"""Reproduction drivers for the paper's evaluation tables.

Each ``tableN()`` runs the experiment grid of the corresponding paper
table, renders a paper-vs-measured comparison and evaluates *shape
checks* — the qualitative claims the table supports.  Repetition counts
default to the paper's 10 but can be reduced for quick runs (the
benchmark suite uses ``REPRO_REPETITIONS``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..device import XEON_GOLD_5220
from ..metrics import fmt_ci_pct, fmt_pct, render_table
from ..workloads import SyntheticWorkloadConfig
from . import paper_reference as paper
from .experiments import ExperimentSetup, measure_overhead

__all__ = [
    "TableResult",
    "default_repetitions",
    "table2",
    "table3",
    "table7",
    "table8",
    "table9",
    "table10",
    "ALL_TABLES",
]


def default_repetitions(fallback: int = 10) -> int:
    """Repetition count; ``REPRO_REPETITIONS`` overrides the default."""
    value = os.environ.get("REPRO_REPETITIONS")
    if value:
        return max(1, int(value))
    return fallback


@dataclass
class TableResult:
    """One reproduced table/figure: rendered text plus shape checks."""

    name: str
    title: str
    text: str
    rows: List[Dict[str, Any]]
    checks: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(passed for _, passed in self.checks)

    def failed_checks(self) -> List[str]:
        return [desc for desc, passed in self.checks if not passed]

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED: " + "; ".join(self.failed_checks())
        return f"{self.name}: {len(self.checks)} checks {status}"


def _config(attrs: int, duration: float) -> SyntheticWorkloadConfig:
    return SyntheticWorkloadConfig(
        attributes_per_task=attrs, task_duration_s=duration
    )


def table2(repetitions: Optional[int] = None) -> TableResult:
    """Table II: ProvLake/DfAnalyzer capture overhead on IoT/Edge."""
    reps = repetitions or default_repetitions()
    rows: List[Dict[str, Any]] = []
    rendered = []
    for (system, attrs), per_duration in paper.TABLE2.items():
        cells = [f"{system} @{attrs} attrs"]
        for duration in paper.DURATIONS:
            result = measure_overhead(
                ExperimentSetup(system=system), _config(attrs, duration),
                repetitions=reps, keep_outcomes=False,
            )
            ci = result.ci
            rows.append(
                {
                    "system": system, "attrs": attrs, "duration": duration,
                    "overhead": ci.mean, "ci": ci.halfwidth,
                    "paper": per_duration[duration],
                }
            )
            cells.append(
                f"{fmt_ci_pct(ci.mean, ci.halfwidth)} (paper {fmt_pct(per_duration[duration])})"
            )
        rendered.append(cells)

    checks = []
    for row in rows:
        checks.append(
            (
                f"{row['system']}@{row['attrs']}/{row['duration']}s is high overhead (>3%)",
                row["overhead"] > paper.LOW_OVERHEAD_THRESHOLD,
            )
        )
        checks.append(
            (
                f"{row['system']}@{row['attrs']}/{row['duration']}s within 35% of paper",
                abs(row["overhead"] - row["paper"]) / row["paper"] < 0.35,
            )
        )
    by_key = {(r["system"], r["attrs"], r["duration"]): r["overhead"] for r in rows}
    for attrs in (10, 100):
        for duration in paper.DURATIONS:
            checks.append(
                (
                    f"provlake slower than dfanalyzer @{attrs}/{duration}s",
                    by_key[("provlake", attrs, duration)]
                    > by_key[("dfanalyzer", attrs, duration)],
                )
            )

    text = render_table(
        "Table II - baseline capture overhead on IoT/Edge "
        f"(mean of {reps} runs +-95% CI)",
        ["system", *[f"{d}s" for d in paper.DURATIONS]],
        rendered,
        note="paper: ProvLake 56.9%..6.02%, DfAnalyzer 39.8%..4.26%; all >3%",
    )
    return TableResult("table2", "Table II", text, rows, checks)


def _grouping_table(
    name: str,
    title: str,
    system: str,
    reference: Dict[Tuple[str, int], Dict[float, float]],
    reps: int,
    extra_checks: Callable[[Dict], List[Tuple[str, bool]]],
) -> TableResult:
    durations = (0.5, 1.0)
    rows: List[Dict[str, Any]] = []
    rendered = []
    for (bandwidth, group), per_duration in reference.items():
        cells = [f"{bandwidth} group={group}"]
        for duration in durations:
            result = measure_overhead(
                ExperimentSetup(system=system, bandwidth=bandwidth, group_size=group),
                _config(100, duration),
                repetitions=reps, keep_outcomes=False,
            )
            ci = result.ci
            rows.append(
                {
                    "bandwidth": bandwidth, "group": group, "duration": duration,
                    "overhead": ci.mean, "ci": ci.halfwidth,
                    "paper": per_duration[duration],
                }
            )
            cells.append(
                f"{fmt_ci_pct(ci.mean, ci.halfwidth)} (paper {fmt_pct(per_duration[duration])})"
            )
        rendered.append(cells)

    by_key = {(r["bandwidth"], r["group"], r["duration"]): r["overhead"] for r in rows}
    checks = extra_checks(by_key)
    text = render_table(
        title, ["condition", *[f"{d}s" for d in durations]], rendered
    )
    return TableResult(name, title, text, rows, checks)


def table3(repetitions: Optional[int] = None) -> TableResult:
    """Table III: ProvLake grouping/bandwidth impact."""
    reps = repetitions or default_repetitions()

    def checks(by_key) -> List[Tuple[str, bool]]:
        out = []
        for duration in (0.5, 1.0):
            out.append(
                (
                    f"1Gbit: grouping 50 reaches low overhead at {duration}s",
                    by_key[("1Gbit", 50, duration)] < paper.LOW_OVERHEAD_THRESHOLD,
                )
            )
            out.append(
                (
                    f"1Gbit: grouping monotonically helps at {duration}s",
                    by_key[("1Gbit", 0, duration)]
                    > by_key[("1Gbit", 10, duration)]
                    > by_key[("1Gbit", 50, duration)],
                )
            )
            out.append(
                (
                    f"25Kbit: overhead stays high (>43%) for all groups at {duration}s",
                    all(by_key[("25Kbit", g, duration)] > 0.43 for g in paper.GROUPS),
                )
            )
            ungrouped_factor = by_key[("25Kbit", 0, duration)] / by_key[("1Gbit", 0, duration)]
            out.append(
                (
                    f"25Kbit ungrouped is several times worse than 1Gbit at {duration}s",
                    ungrouped_factor > 3.0,
                )
            )
        return out

    return _grouping_table(
        "table3",
        f"Table III - ProvLake grouping & bandwidth (100 attrs, {reps} runs)",
        "provlake",
        paper.TABLE3,
        reps,
        checks,
    )


def table7(repetitions: Optional[int] = None) -> TableResult:
    """Table VII: ProvLight capture overhead on IoT/Edge."""
    reps = repetitions or default_repetitions()
    rows: List[Dict[str, Any]] = []
    rendered = []
    for attrs, per_duration in paper.TABLE7.items():
        cells = [f"provlight @{attrs} attrs"]
        for duration in paper.DURATIONS:
            result = measure_overhead(
                ExperimentSetup(system="provlight"), _config(attrs, duration),
                repetitions=reps, keep_outcomes=False,
            )
            ci = result.ci
            rows.append(
                {
                    "attrs": attrs, "duration": duration,
                    "overhead": ci.mean, "ci": ci.halfwidth,
                    "paper": per_duration[duration],
                }
            )
            cells.append(
                f"{fmt_ci_pct(ci.mean, ci.halfwidth)} (paper {fmt_pct(per_duration[duration])})"
            )
        rendered.append(cells)

    checks: List[Tuple[str, bool]] = []
    for row in rows:
        checks.append(
            (
                f"provlight@{row['attrs']}/{row['duration']}s is low overhead (<3%)",
                row["overhead"] < paper.LOW_OVERHEAD_THRESHOLD,
            )
        )
    # the headline claim: 26x/37x faster than the baselines at 0.5s tasks
    pl2 = paper.TABLE2  # reuse paper's baselines for factor references
    by_attr = {(r["attrs"], r["duration"]): r["overhead"] for r in rows}
    for attrs in (10, 100):
        for duration in paper.DURATIONS:
            checks.append(
                (
                    f"sub-0.5% overhead for long tasks @{attrs}/{duration}s"
                    if duration >= 3.5
                    else f"overhead under 2% @{attrs}/{duration}s",
                    by_attr[(attrs, duration)] < (0.005 if duration >= 3.5 else 0.02),
                )
            )
    text = render_table(
        f"Table VII - ProvLight capture overhead on IoT/Edge ({reps} runs)",
        ["system", *[f"{d}s" for d in paper.DURATIONS]],
        rendered,
        note="paper: 1.45%..0.23% (10 attrs), 1.54%..0.29% (100 attrs); all <3%",
    )
    return TableResult("table7", "Table VII", text, rows, checks)


def table8(repetitions: Optional[int] = None) -> TableResult:
    """Table VIII: ProvLight grouping/bandwidth impact."""
    reps = repetitions or default_repetitions()

    def checks(by_key) -> List[Tuple[str, bool]]:
        out = []
        for duration in (0.5, 1.0):
            for g in paper.GROUPS:
                out.append(
                    (
                        f"low overhead (<2%) at 25Kbit group={g} {duration}s",
                        by_key[("25Kbit", g, duration)] < 0.02,
                    )
                )
            for g in paper.GROUPS:
                fast = by_key[("1Gbit", g, duration)]
                slow = by_key[("25Kbit", g, duration)]
                out.append(
                    (
                        f"bandwidth-insensitive at group={g} {duration}s",
                        abs(slow - fast) / fast < 0.15,
                    )
                )
            out.append(
                (
                    f"grouping still helps a little at {duration}s",
                    by_key[("1Gbit", 50, duration)] <= by_key[("1Gbit", 0, duration)],
                )
            )
        return out

    return _grouping_table(
        "table8",
        f"Table VIII - ProvLight grouping & bandwidth (100 attrs, {reps} runs)",
        "provlight",
        paper.TABLE8,
        reps,
        checks,
    )


def table9(repetitions: Optional[int] = None) -> TableResult:
    """Table IX: ProvLight scalability over 8..64 devices.

    The heaviest experiment (64 simulated devices); default repetitions
    are reduced to 3 unless overridden.
    """
    reps = repetitions or default_repetitions(fallback=3)
    config = _config(100, 0.5)
    rows: List[Dict[str, Any]] = []
    cells = ["provlight"]
    for n_devices in sorted(paper.TABLE9):
        result = measure_overhead(
            ExperimentSetup(system="provlight", n_devices=n_devices),
            config, repetitions=reps, keep_outcomes=False,
        )
        ci = result.ci
        rows.append(
            {
                "devices": n_devices, "overhead": ci.mean, "ci": ci.halfwidth,
                "paper": paper.TABLE9[n_devices],
            }
        )
        cells.append(
            f"{fmt_ci_pct(ci.mean, ci.halfwidth)} (paper {fmt_pct(paper.TABLE9[n_devices])})"
        )

    overheads = {r["devices"]: r["overhead"] for r in rows}
    checks = [
        (
            f"low overhead (<3%) at {n} devices",
            overheads[n] < paper.LOW_OVERHEAD_THRESHOLD,
        )
        for n in sorted(overheads)
    ]
    checks.append(
        (
            "scaling 8->64 devices changes overhead by <20% relative",
            abs(overheads[64] - overheads[8]) / overheads[8] < 0.20,
        )
    )
    text = render_table(
        f"Table IX - ProvLight scalability (0.5s tasks, 100 attrs, {reps} runs)",
        ["system", *[f"{n} devices" for n in sorted(paper.TABLE9)]],
        [cells],
        note="paper: 1.54%, 1.54%, 1.56%, 1.57% - flat",
    )
    return TableResult("table9", "Table IX", text, rows, checks)


def table10(repetitions: Optional[int] = None) -> TableResult:
    """Table X: capture overhead on cloud servers."""
    reps = repetitions or default_repetitions()
    rows: List[Dict[str, Any]] = []
    rendered = []
    for system, per_duration in paper.TABLE10.items():
        cells = [system]
        for duration in paper.DURATIONS:
            result = measure_overhead(
                ExperimentSetup(
                    system=system, device_spec=XEON_GOLD_5220,
                    delay="0.05ms", bandwidth="1Gbit",
                ),
                _config(100, duration),
                repetitions=reps, keep_outcomes=False,
            )
            ci = result.ci
            rows.append(
                {
                    "system": system, "duration": duration,
                    "overhead": ci.mean, "ci": ci.halfwidth,
                    "paper": per_duration[duration],
                }
            )
            cells.append(
                f"{fmt_ci_pct(ci.mean, ci.halfwidth)} (paper {fmt_pct(per_duration[duration])})"
            )
        rendered.append(cells)

    by_key = {(r["system"], r["duration"]): r["overhead"] for r in rows}
    checks: List[Tuple[str, bool]] = []
    for row in rows:
        checks.append(
            (
                f"{row['system']}@{row['duration']}s low overhead (<3%) in cloud",
                row["overhead"] < paper.LOW_OVERHEAD_THRESHOLD,
            )
        )
    for duration in paper.DURATIONS:
        checks.append(
            (
                f"provlight fastest in cloud at {duration}s",
                by_key[("provlight", duration)] < by_key[("dfanalyzer", duration)]
                < by_key[("provlake", duration)],
            )
        )
    factor = by_key[("provlake", 0.5)] / by_key[("provlight", 0.5)]
    checks.append(("provlight roughly 7x faster than provlake (3x..20x)", 3.0 < factor < 20.0))
    factor = by_key[("dfanalyzer", 0.5)] / by_key[("provlight", 0.5)]
    checks.append(("provlight roughly 5x faster than dfanalyzer (2.5x..15x)", 2.5 < factor < 15.0))

    text = render_table(
        f"Table X - capture overhead in cloud servers (100 attrs, {reps} runs)",
        ["system", *[f"{d}s" for d in paper.DURATIONS]],
        rendered,
        note="paper: all <3%; ProvLight 7x/5x faster than ProvLake/DfAnalyzer",
    )
    return TableResult("table10", "Table X", text, rows, checks)


ALL_TABLES: Dict[str, Callable[..., TableResult]] = {
    "table2": table2,
    "table3": table3,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "table10": table10,
}
