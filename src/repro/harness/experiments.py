"""Experiment driver: build a world, run an instrumented workload, measure.

This module is the reusable middle layer between the workloads and the
per-table benchmark scripts: it reproduces the paper's experimental setup
(Fig. 5) for any capture system, bandwidth, delay, grouping and device
count, and returns the measures every table/figure is built from.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..baselines import DfAnalyzerCaptureClient, NullCaptureClient, ProvLakeClient
from ..capture import (
    CaptureConfig,
    create_client,
    deploy_capture_sink,
    normalize_transport,
)
from ..core import (
    DEFAULT_BROKER_SHARDS,
    DEFAULT_TRANSLATOR_WORKERS,
    CallableBackend,
    ProvLightServer,
)
from ..device import A8M3, XEON_GOLD_5220, Device, DeviceSpec
from ..dfanalyzer import DfAnalyzerService
from ..http import HttpResponse, HttpServer
from ..metrics import RunMetrics, mean_ci, relative_overhead, snapshot_device
from ..net import (
    ChaosProfile,
    ContinuumTopology,
    FleetFaultInjector,
    Network,
    ServerFaultInjector,
    TopologySpec,
    parse_delay,
    parse_rate,
)
from ..simkernel import Environment
from ..workloads import SyntheticWorkloadConfig, synthetic_workload

__all__ = [
    "SYSTEMS",
    "ExperimentSetup",
    "RunOutcome",
    "run_capture_experiment",
    "run_null_baseline",
    "measure_overhead",
    "OverheadResult",
]

SYSTEMS = ("provlight", "provlake", "dfanalyzer")

#: Default repetition count (the paper repeats each experiment 10 times).
DEFAULT_REPETITIONS = 10


def _default_broker_shards() -> int:
    """Broker shard count; ``REPRO_BROKER_SHARDS`` overrides the default.

    The environment hook is what lets ``python -m repro.harness
    --broker-shards N`` retarget every table/figure without threading an
    argument through each driver.  Invalid values fail loudly here, at
    the first ``ExperimentSetup()``, matching the CLI's rejection.
    """
    value = os.environ.get("REPRO_BROKER_SHARDS")
    if not value:
        return DEFAULT_BROKER_SHARDS
    try:
        shards = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_BROKER_SHARDS must be an integer, got {value!r}"
        ) from None
    if shards < 1:
        raise ValueError(f"REPRO_BROKER_SHARDS must be >= 1, got {shards}")
    return shards


def _default_broker_placement() -> str:
    """Session placement policy; ``REPRO_BROKER_PLACEMENT`` overrides.

    ``hash`` (consistent hashing, the default) or ``p2c`` (load-aware
    power-of-two-choices).  Same loud-failure contract as
    :func:`_default_broker_shards`.
    """
    value = os.environ.get("REPRO_BROKER_PLACEMENT")
    if not value:
        return "hash"
    if value not in ("hash", "p2c"):
        raise ValueError(
            f"REPRO_BROKER_PLACEMENT must be 'hash' or 'p2c', got {value!r}"
        )
    return value


def _default_pool_bound(var: str) -> Optional[int]:
    """Optional translator-pool bound from ``REPRO_POOL_MIN``/``_MAX``."""
    value = os.environ.get(var)
    if not value:
        return None
    try:
        bound = int(value)
    except ValueError:
        raise ValueError(f"{var} must be an integer, got {value!r}") from None
    if bound < 1:
        raise ValueError(f"{var} must be >= 1, got {bound}")
    return bound


def _default_pool_min() -> Optional[int]:
    return _default_pool_bound("REPRO_POOL_MIN")


def _default_pool_max() -> Optional[int]:
    return _default_pool_bound("REPRO_POOL_MAX")


def _default_chaos() -> Optional[str]:
    """Chaos profile spec; ``REPRO_CHAOS`` injects one into every run.

    Same contract as :func:`_default_broker_shards`: a malformed spec
    fails loudly at the first ``ExperimentSetup()``, not mid-run.
    """
    value = os.environ.get("REPRO_CHAOS")
    if not value:
        return None
    ChaosProfile.parse(value)  # validate eagerly; keep the spec string
    return value


def _default_topology() -> Optional[str]:
    """Continuum topology spec; ``REPRO_TOPOLOGY`` retargets every run.

    Accepts a preset name (``ideal``, ``constrained-edge``,
    ``lossy-wireless``, ``wan-fog``) or a full
    :class:`~repro.net.TopologySpec` string, validated eagerly so a
    typo fails at the first ``ExperimentSetup()``.
    """
    value = os.environ.get("REPRO_TOPOLOGY")
    if not value:
        return None
    TopologySpec.parse(value)  # validate eagerly; keep the spec string
    return value


@dataclass(frozen=True)
class ExperimentSetup:
    """Everything that defines one experimental condition."""

    system: str = "provlight"
    bandwidth: str = "1Gbit"
    delay: str = "23ms"
    group_size: int = 0
    n_devices: int = 1
    device_spec: DeviceSpec = A8M3
    compress: bool = True
    qos: int = 2
    #: capture transport for the provlight system (``mqttsn``, ``coap``
    #: or ``http`` — any name in :func:`repro.capture.transport_names`)
    transport: str = "mqttsn"
    #: attach each device topic to the server's translator pool (paper Fig. 5)
    with_translators: bool = True
    #: size of the sharded translator pool on the server (paper Table IX:
    #: 8 workers absorb 64 device topics)
    translator_workers: int = DEFAULT_TRANSLATOR_WORKERS
    #: broker shards behind the server endpoint (1 = the single-broker
    #: deployment; ``REPRO_BROKER_SHARDS`` overrides the default)
    broker_shards: int = field(default_factory=_default_broker_shards)
    #: session placement policy across broker shards (``hash`` = consistent
    #: hashing, ``p2c`` = load-aware power-of-two-choices;
    #: ``REPRO_BROKER_PLACEMENT`` overrides the default)
    broker_placement: str = field(default_factory=_default_broker_placement)
    #: elastic translator-pool bounds (``None`` = static pool of
    #: ``translator_workers``; ``REPRO_POOL_MIN``/``REPRO_POOL_MAX`` override)
    pool_min: Optional[int] = field(default_factory=_default_pool_min)
    pool_max: Optional[int] = field(default_factory=_default_pool_max)
    #: chaos schedule (:class:`~repro.net.ChaosProfile` spec string, e.g.
    #: ``"kill-shard@2.0"`` or ``"churn@5:0.2:2"``; ``REPRO_CHAOS`` sets
    #: a default)
    chaos: Optional[str] = field(default_factory=_default_chaos)
    #: continuum topology (:class:`~repro.net.TopologySpec` spec string or
    #: preset name, e.g. ``"lossy-wireless"``; ``None`` = the ideal star;
    #: ``REPRO_TOPOLOGY`` sets a default).  When set, the spec's link
    #: profiles replace ``bandwidth``/``delay`` and its leaf tier is
    #: resized to ``n_devices``.
    topology: Optional[str] = field(default_factory=_default_topology)

    def chaos_profile(self) -> Optional["ChaosProfile"]:
        """The parsed chaos schedule, or ``None`` when chaos is off."""
        if not self.chaos:
            return None
        return ChaosProfile.parse(self.chaos)

    def topology_spec(self) -> Optional["TopologySpec"]:
        """The parsed continuum topology, or ``None`` for the star."""
        if not self.topology:
            return None
        return TopologySpec.parse(self.topology)

    def effective_translator_workers(self) -> int:
        """Starting pool size: ``translator_workers`` clamped into the
        elastic bounds.  ``--pool-min``/``--pool-max`` express intent
        about the pool envelope; the static default (8) must not make
        the server refuse to start when it falls outside that envelope.
        """
        workers = self.translator_workers
        if self.pool_min is not None:
            workers = max(workers, self.pool_min)
        if self.pool_max is not None:
            workers = min(workers, self.pool_max)
        return workers

    def capture_config(self) -> CaptureConfig:
        """The declarative capture config this condition describes."""
        return CaptureConfig(
            transport=self.transport,
            group_size=self.group_size,
            compress=self.compress,
            qos=self.qos,
        )

    def describe(self) -> str:
        parts = [self.system, self.bandwidth, f"delay={self.delay}"]
        if normalize_transport(self.transport) != "mqttsn":
            parts.append(f"transport={self.transport}")
        if self.group_size:
            parts.append(f"group={self.group_size}")
        if self.n_devices > 1:
            parts.append(f"devices={self.n_devices}")
        if self.broker_shards > 1:
            parts.append(f"shards={self.broker_shards}")
        if self.broker_placement != "hash":
            parts.append(f"placement={self.broker_placement}")
        if self.pool_min is not None or self.pool_max is not None:
            parts.append(f"pool={self.pool_min or '-'}..{self.pool_max or '-'}")
        if self.chaos:
            parts.append(f"chaos={self.chaos}")
        if self.topology:
            parts.append(f"topology={self.topology}")
        if self.device_spec is not A8M3:
            parts.append(self.device_spec.name)
        return " ".join(parts)


@dataclass
class RunOutcome:
    """Measures of one run (per device)."""

    elapsed: List[float]
    metrics: List[RunMetrics]
    backend_records: int
    #: device-churn snapshot (devices crashed/restarted, journal
    #: recoveries, ``records_completed`` ledger) when the run drove a
    #: :class:`~repro.net.FleetFaultInjector`; ``None`` otherwise
    fleet_stats: Optional[Dict[str, Any]] = None
    #: tier-fault snapshot when the run used a continuum topology
    topology_stats: Optional[Dict[str, Any]] = None

    @property
    def mean_elapsed(self) -> float:
        return float(np.mean(self.elapsed))


def run_null_baseline(
    config: SyntheticWorkloadConfig, seed: int, n_devices: int = 1,
    device_spec: DeviceSpec = A8M3,
) -> float:
    """Elapsed time of the workload with no capture at all (same seeds)."""
    env = Environment()
    results = []
    for i in range(n_devices):
        device = Device(env, device_spec, name=f"null-{i}")
        result: Dict[str, Any] = {}
        results.append(result)
        env.process(
            synthetic_workload(
                env, NullCaptureClient(device), config,
                rng=np.random.default_rng(seed * 1000 + i), result=result,
            ),
            name=f"null-workload-{i}",
        )
    env.run()
    return float(np.mean([r["elapsed"] for r in results]))


def run_capture_experiment(
    setup: ExperimentSetup,
    config: SyntheticWorkloadConfig,
    seed: int,
    capture_config: Optional[CaptureConfig] = None,
) -> RunOutcome:
    """Run the workload with capture per ``setup``; returns the measures.

    ``capture_config`` overrides the :class:`~repro.capture.CaptureConfig`
    derived from ``setup`` (transport/grouping/QoS/compression) for the
    ``provlight`` system; the matching capture sink (MQTT-SN server, CoAP
    server or HTTP collector) is deployed automatically.
    """
    if setup.system not in SYSTEMS:
        raise ValueError(f"unknown system {setup.system!r}; known: {SYSTEMS}")
    chaos_profile = setup.chaos_profile()
    topo_spec = setup.topology_spec()
    if chaos_profile is not None:
        if setup.system != "provlight" or normalize_transport(
            (capture_config or setup.capture_config()).transport
        ) != "mqttsn":
            raise ValueError(
                "chaos profiles target the provlight mqttsn server plane; "
                f"got system={setup.system!r} transport="
                f"{(capture_config or setup.capture_config()).transport!r}"
            )
        if chaos_profile.requires_backend_link():
            raise ValueError(
                "the harness backend is in-process (no server<->backend "
                "link); backend-outage/flap-backend events need a "
                "ServerFaultInjector wired with network= and backend_host="
            )
        if (
            any(e.kind == "kill-shard" for e in chaos_profile.events)
            and setup.broker_shards < 2
        ):
            raise ValueError(
                "kill-shard chaos needs broker_shards >= 2 (a surviving "
                "shard must take over the killed shard's sessions)"
            )
        if chaos_profile.requires_topology() and topo_spec is None:
            raise ValueError(
                "partition-tier/degrade-tier chaos events need a continuum "
                "topology (set ExperimentSetup.topology / --topology / "
                "REPRO_TOPOLOGY)"
            )
        if chaos_profile.requires_fleet():
            cap = capture_config or setup.capture_config()
            if cap.group_size:
                raise ValueError(
                    "crash-device/churn chaos needs group_size=0: a "
                    "partially filled group buffer lives only in memory, "
                    "so a crash would lose records the run already "
                    "counted — zero-loss accounting cannot hold"
                )
            if cap.qos < 1:
                raise ValueError(
                    "crash-device/churn chaos needs qos >= 1 (QoS 0 has "
                    "no delivery contract, so a crashed uplink silently "
                    "drops records and zero-loss accounting cannot hold)"
                )
    env = Environment()
    net = Network(env, seed=seed)

    cloud_device = Device(env, XEON_GOLD_5220, name="cloud-device")
    net.add_host("cloud", device=cloud_device)

    devices: List[Device] = []
    topology: Optional[ContinuumTopology] = None
    if topo_spec is not None:
        # the spec's link profiles define the network; the star's
        # bandwidth/delay fields do not apply
        def _make_device(tier: str, index: int):
            if tier != topo_spec.leaf.name:
                return None  # fog/intermediate hosts only forward
            device = Device(env, setup.device_spec, name=f"{tier}-{index}")
            devices.append(device)
            return device

        topology = ContinuumTopology(
            net, topo_spec.scaled(setup.n_devices), root_host="cloud",
            device_factory=_make_device,
        )
    else:
        bandwidth = parse_rate(setup.bandwidth)
        delay = parse_delay(setup.delay)
        for i in range(setup.n_devices):
            device = Device(env, setup.device_spec, name=f"edge-{i}")
            net.add_host(f"edge-{i}", device=device)
            net.connect(f"edge-{i}", "cloud", bandwidth_bps=bandwidth,
                        latency_s=delay)
            devices.append(device)

    backend_service = DfAnalyzerService()
    clients: List[Any] = []
    server: Optional[ProvLightServer] = None
    fleet: Optional[FleetFaultInjector] = None
    journal_tmp: Optional[str] = None
    if setup.system == "provlight":
        cap_config = capture_config or setup.capture_config()
        transport = normalize_transport(cap_config.transport)
        if transport == "mqttsn":
            server = ProvLightServer(
                net.hosts["cloud"], CallableBackend(backend_service.ingest),
                workers=setup.effective_translator_workers(),
                broker_shards=setup.broker_shards,
                broker_placement=setup.broker_placement,
                pool_min=setup.pool_min,
                pool_max=setup.pool_max,
            )
            endpoint = server.endpoint
        else:
            _, endpoint = deploy_capture_sink(
                transport, net.hosts["cloud"], backend_service.ingest,
                http_workers=max(8, setup.n_devices),
            )
        if chaos_profile is not None and chaos_profile.requires_fleet():
            # device churn only makes sense for clients that survive a
            # crash, so the run is auto-provisioned durable with
            # run-scoped journals (cleaned up after the run) unless the
            # caller already supplied a durable config
            fleet = FleetFaultInjector(env, topology=topology, seed=seed)
            if not cap_config.durable:
                journal_tmp = tempfile.mkdtemp(prefix="repro-fleet-journals-")
                cap_config = replace(
                    cap_config, durable=True, journal_dir=journal_tmp
                )
        for device in devices:
            topic = f"provlight/{device.name}/data"
            client = create_client(device, endpoint, topic, cap_config)
            if fleet is not None:
                def _restart(device=device, topic=topic):
                    return create_client(device, endpoint, topic, cap_config)

                fleet.register(device.name, client, _restart)
                clients.append(fleet.proxy(device.name))
            else:
                clients.append(client)
        if chaos_profile is not None:
            chaos_profile.apply(
                ServerFaultInjector(server), fleet=fleet, topology=topology
            )
    else:
        def handler(request):
            import json

            try:
                backend_service.ingest(json.loads(request.body.decode()))
            except (ValueError, KeyError, TypeError):
                # malformed body or record shape: byte/timing fidelity
                # matters here, not storage — but programming errors
                # (anything outside the malformed-payload family) surface
                pass
            return HttpResponse(status=201, reason="Created")

        HttpServer(net.hosts["cloud"], 5000, handler, workers=max(8, setup.n_devices))
        for device in devices:
            if setup.system == "provlake":
                clients.append(
                    ProvLakeClient(device, ("cloud", 5000), group_size=setup.group_size)
                )
            else:
                clients.append(DfAnalyzerCaptureClient(device, ("cloud", 5000)))

    results: List[Dict[str, Any]] = []
    snapshots: List[RunMetrics] = []

    def run_device(env, idx, client, device):
        if server is not None and setup.with_translators:
            yield from server.add_translator(f"provlight/{device.name}/data")
        device.reset_accounting()
        result: Dict[str, Any] = {}
        results.append(result)
        yield from synthetic_workload(
            env, client, config,
            rng=np.random.default_rng(seed * 1000 + idx), result=result,
        )
        snapshots.append(snapshot_device(device, result["elapsed"]))

    for i, (client, device) in enumerate(zip(clients, devices)):
        env.process(run_device(env, i, client, device), name=f"device-{i}")
    env.run()

    fleet_stats: Optional[Dict[str, Any]] = None
    if fleet is not None:
        fleet_stats = fleet.stats()
        # the zero-loss ledger: proxy calls that ran to completion (see
        # repro.net.fleet.FleetClientProxy)
        fleet_stats["records_completed"] = sum(
            proxy.records_completed for proxy in clients
        )
        for name in fleet.devices:
            fleet.client_of(name).close()
    if journal_tmp is not None:
        shutil.rmtree(journal_tmp, ignore_errors=True)

    return RunOutcome(
        elapsed=[r["elapsed"] for r in results],
        metrics=snapshots,
        backend_records=int(backend_service.records_ingested.count),
        fleet_stats=fleet_stats,
        topology_stats=topology.stats() if topology is not None else None,
    )


@dataclass
class OverheadResult:
    """Overhead (paper's metric) across repetitions, with run measures."""

    setup: ExperimentSetup
    config: SyntheticWorkloadConfig
    overheads: List[float]
    outcomes: List[RunOutcome] = field(default_factory=list)

    @property
    def ci(self):
        return mean_ci(self.overheads)

    def mean_metric(self, reader) -> float:
        """Average a RunMetrics field over all runs/devices."""
        values = [
            reader(metric)
            for outcome in self.outcomes
            for metric in outcome.metrics
        ]
        return float(np.mean(values))


def measure_overhead(
    setup: ExperimentSetup,
    config: SyntheticWorkloadConfig,
    repetitions: int = DEFAULT_REPETITIONS,
    keep_outcomes: bool = True,
) -> OverheadResult:
    """The paper's capture-time-overhead measurement.

    For each repetition, the workload runs once without capture and once
    with, using identical task-duration jitter streams, and the relative
    elapsed-time difference is recorded.
    """
    overheads: List[float] = []
    outcomes: List[RunOutcome] = []
    for rep in range(repetitions):
        seed = rep + 1
        t_without = run_null_baseline(
            config, seed, n_devices=setup.n_devices, device_spec=setup.device_spec
        )
        outcome = run_capture_experiment(setup, config, seed)
        overheads.append(relative_overhead(outcome.mean_elapsed, t_without))
        if keep_outcomes:
            outcomes.append(outcome)
    return OverheadResult(setup=setup, config=config, overheads=overheads,
                          outcomes=outcomes)
