"""Evaluation harness: reproduces every table and figure of the paper's
evaluation section, prints paper-vs-measured comparisons and validates
shape checks (who wins, orderings, rough factors, low/high overhead)."""

from .experiments import (
    DEFAULT_REPETITIONS,
    SYSTEMS,
    ExperimentSetup,
    OverheadResult,
    RunOutcome,
    measure_overhead,
    run_capture_experiment,
    run_null_baseline,
)
from .figures import ALL_FIGURES, fig6a_cpu, fig6b_memory, fig6c_network, fig6d_power, figure6_runs
from .runner import ALL_TARGETS, main, run_targets
from .tables import (
    ALL_TABLES,
    TableResult,
    default_repetitions,
    table2,
    table3,
    table7,
    table8,
    table9,
    table10,
)

__all__ = [
    "SYSTEMS",
    "DEFAULT_REPETITIONS",
    "ExperimentSetup",
    "OverheadResult",
    "RunOutcome",
    "measure_overhead",
    "run_capture_experiment",
    "run_null_baseline",
    "TableResult",
    "default_repetitions",
    "table2",
    "table3",
    "table7",
    "table8",
    "table9",
    "table10",
    "fig6a_cpu",
    "fig6b_memory",
    "fig6c_network",
    "fig6d_power",
    "figure6_runs",
    "ALL_TABLES",
    "ALL_FIGURES",
    "ALL_TARGETS",
    "run_targets",
    "main",
]
