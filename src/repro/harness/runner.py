"""Command-line harness: regenerate any paper table or figure.

Usage::

    python -m repro.harness all
    python -m repro.harness table7 fig6a --reps 5
    python -m repro.harness table9 --broker-shards 4
    python -m repro.harness all --write-experiments EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from .figures import ALL_FIGURES, figure6_runs
from .tables import ALL_TABLES, TableResult
from .timing import WallClockTimer

__all__ = ["main", "run_targets", "write_experiments_md", "ALL_TARGETS"]

ALL_TARGETS = list(ALL_TABLES) + list(ALL_FIGURES)


def run_targets(targets: List[str], repetitions: Optional[int] = None) -> Dict[str, TableResult]:
    """Run the named targets; 'all' expands to every table and figure."""
    if "all" in targets:
        targets = ALL_TARGETS
    unknown = [t for t in targets if t not in ALL_TARGETS]
    if unknown:
        raise SystemExit(f"unknown targets {unknown}; available: all, {', '.join(ALL_TARGETS)}")

    results: Dict[str, TableResult] = {}
    fig_targets = [t for t in targets if t in ALL_FIGURES]
    shared_runs = figure6_runs(repetitions) if fig_targets else None
    for target in targets:
        with WallClockTimer() as timer:
            if target in ALL_TABLES:
                result = ALL_TABLES[target](repetitions)
            else:
                result = ALL_FIGURES[target](shared_runs)
        results[target] = result
        print(result.text)
        print(f"[{target}] {result.summary()} ({timer.elapsed:.1f}s)\n")
    return results


def write_experiments_md(results: Dict[str, TableResult], path: str) -> None:
    """Append a machine-generated results section to EXPERIMENTS.md."""
    lines = [
        "",
        "## Harness output (machine generated)",
        "",
        "Regenerate with `python -m repro.harness all --write-experiments EXPERIMENTS.md`.",
        "",
    ]
    for name, result in results.items():
        lines.append(f"### {result.title}")
        lines.append("")
        lines.append("```text")
        lines.append(result.text.strip())
        lines.append("```")
        lines.append("")
        lines.append(f"Shape checks: **{result.summary()}**")
        lines.append("")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the ProvLight paper's tables and figures.",
    )
    parser.add_argument(
        "targets", nargs="*", default=["all"],
        help=f"any of: all, {', '.join(ALL_TARGETS)} (default: all)",
    )
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per experiment (default: paper's 10)")
    parser.add_argument("--broker-shards", type=int, default=None, metavar="N",
                        help="broker shards behind the ProvLight server "
                        "endpoint for every experiment (default: 1, the "
                        "single-broker deployment)")
    parser.add_argument("--broker-placement", choices=("hash", "p2c"),
                        default=None,
                        help="session placement policy across broker shards "
                        "(hash = consistent hashing, the default; p2c = "
                        "load-aware power-of-two-choices)")
    parser.add_argument("--pool-min", type=int, default=None, metavar="N",
                        help="lower bound of the elastic translator pool "
                        "(default: static pool, no autoscaling)")
    parser.add_argument("--pool-max", type=int, default=None, metavar="N",
                        help="upper bound of the elastic translator pool "
                        "(default: static pool, no autoscaling)")
    parser.add_argument("--chaos", metavar="SPEC", default=None,
                        help="chaos schedule applied to every ProvLight "
                        "run, e.g. 'kill-shard@2.0', 'churn@5:0.2:2' or "
                        "'partition-tier:edge-fog@8:3' (see "
                        "repro.net.ChaosProfile for the grammar)")
    parser.add_argument("--topology", metavar="SPEC", default=None,
                        help="continuum topology for every run: a preset "
                        "name (ideal, constrained-edge, lossy-wireless, "
                        "wan-fog) or a spec like "
                        "'edge:64:lossy-wireless,fog:4:wan-fog,cloud:1' "
                        "(leaf tier first; its count is resized to each "
                        "experiment's device count — see "
                        "repro.net.TopologySpec)")
    parser.add_argument("--write-experiments", metavar="PATH", default=None,
                        help="append rendered results to this markdown file")
    args = parser.parse_args(argv)

    if args.broker_shards is not None and args.broker_shards < 1:
        parser.error("--broker-shards must be >= 1")
    for bound, flag in ((args.pool_min, "--pool-min"),
                        (args.pool_max, "--pool-max")):
        if bound is not None and bound < 1:
            parser.error(f"{flag} must be >= 1")
    if (args.pool_min is not None and args.pool_max is not None
            and args.pool_min > args.pool_max):
        parser.error("--pool-min must be <= --pool-max")
    if args.chaos is not None:
        from ..net import ChaosProfile

        try:
            ChaosProfile.parse(args.chaos)
        except ValueError as exc:
            parser.error(f"--chaos: {exc}")
    if args.topology is not None:
        from ..net import TopologySpec

        try:
            TopologySpec.parse(args.topology)
        except ValueError as exc:
            parser.error(f"--topology: {exc}")
    # the tables build their ExperimentSetup grids internally; the
    # environment hooks retarget them all (see experiments.py).  Restore
    # them afterwards so an in-process caller (tests, notebooks) does not
    # inherit the override.
    overrides = {
        "REPRO_BROKER_SHARDS": args.broker_shards,
        "REPRO_BROKER_PLACEMENT": args.broker_placement,
        "REPRO_POOL_MIN": args.pool_min,
        "REPRO_POOL_MAX": args.pool_max,
        "REPRO_CHAOS": args.chaos,
        "REPRO_TOPOLOGY": args.topology,
    }
    previous = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is not None:
                os.environ[name] = str(value)
        results = run_targets(args.targets or ["all"], repetitions=args.reps)
    finally:
        for name, value in overrides.items():
            if value is not None:
                if previous[name] is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = previous[name]
    if args.write_experiments:
        write_experiments_md(results, args.write_experiments)
        print(f"appended results to {args.write_experiments}")
    failed = [name for name, r in results.items() if not r.ok]
    if failed:
        print(f"SHAPE CHECK FAILURES in: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all shape checks passed")
    return 0
