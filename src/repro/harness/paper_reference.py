"""The paper's published numbers, as data.

Every harness table prints these next to the measured values, and the
acceptance checks compare *shapes* (who wins, ordering, rough factors,
low/high-overhead classification) rather than absolute equality — the
substrate here is a simulator, not the authors' testbed.

Overheads are fractions (0.569 = 56.9 %).
"""

from __future__ import annotations

__all__ = [
    "TABLE2",
    "TABLE3",
    "TABLE7",
    "TABLE8",
    "TABLE9",
    "TABLE10",
    "FIG6",
    "DURATIONS",
    "GROUPS",
    "LOW_OVERHEAD_THRESHOLD",
]

#: the paper's "low overhead" bar (Section III-A-c)
LOW_OVERHEAD_THRESHOLD = 0.03

DURATIONS = (0.5, 1.0, 3.5, 5.0)
GROUPS = (0, 10, 20, 50)

# Table II: baseline capture overhead on IoT/Edge, by (system, attrs) -> per duration
TABLE2 = {
    ("provlake", 10): {0.5: 0.569, 1.0: 0.299, 3.5: 0.0856, 5.0: 0.0602},
    ("dfanalyzer", 10): {0.5: 0.398, 1.0: 0.212, 3.5: 0.0612, 5.0: 0.0426},
    ("provlake", 100): {0.5: 0.573, 1.0: 0.301, 3.5: 0.0857, 5.0: 0.0604},
    ("dfanalyzer", 100): {0.5: 0.405, 1.0: 0.213, 3.5: 0.0612, 5.0: 0.0431},
}

# Table III: ProvLake grouping impact, (bandwidth, group) -> per duration
TABLE3 = {
    ("1Gbit", 0): {0.5: 0.573, 1.0: 0.301},
    ("1Gbit", 10): {0.5: 0.0683, 1.0: 0.0358},
    ("1Gbit", 20): {0.5: 0.0387, 1.0: 0.0199},
    ("1Gbit", 50): {0.5: 0.0237, 1.0: 0.0124},
    ("25Kbit", 0): {0.5: 3.21, 1.0: 1.61},
    ("25Kbit", 10): {0.5: 1.025, 1.0: 0.498},
    ("25Kbit", 20): {0.5: 1.008, 1.0: 0.5116},
    ("25Kbit", 50): {0.5: 0.9504, 1.0: 0.4323},
}

# Table VII: ProvLight overhead on IoT/Edge, attrs -> per duration
TABLE7 = {
    10: {0.5: 0.0145, 1.0: 0.0102, 3.5: 0.0031, 5.0: 0.0023},
    100: {0.5: 0.0154, 1.0: 0.0111, 3.5: 0.0037, 5.0: 0.0029},
}

# Table VIII: ProvLight grouping impact, (bandwidth, group) -> per duration
TABLE8 = {
    ("1Gbit", 0): {0.5: 0.0154, 1.0: 0.0110},
    ("1Gbit", 10): {0.5: 0.0137, 1.0: 0.0075},
    ("1Gbit", 20): {0.5: 0.0132, 1.0: 0.0072},
    ("1Gbit", 50): {0.5: 0.0131, 1.0: 0.0072},
    ("25Kbit", 0): {0.5: 0.0156, 1.0: 0.0104},
    ("25Kbit", 10): {0.5: 0.0137, 1.0: 0.0074},
    ("25Kbit", 20): {0.5: 0.0134, 1.0: 0.0073},
    ("25Kbit", 50): {0.5: 0.0131, 1.0: 0.0072},
}

# Table IX: ProvLight scalability, devices -> overhead
TABLE9 = {8: 0.0154, 16: 0.0154, 32: 0.0156, 64: 0.0157}

# Table X: cloud-server overhead, system -> per duration (100 attrs)
TABLE10 = {
    "provlake": {0.5: 0.0171, 1.0: 0.0092, 3.5: 0.0034, 5.0: 0.0026},
    "dfanalyzer": {0.5: 0.0117, 1.0: 0.0063, 3.5: 0.0025, 5.0: 0.0021},
    "provlight": {0.5: 0.0024, 1.0: 0.0017, 3.5: 0.0012, 5.0: 0.0011},
}

# Fig. 6: resource overheads during capture (0.5 s tasks, 100 attrs)
FIG6 = {
    "cpu_utilization": {"provlight": 0.0185, "provlake": 0.13, "dfanalyzer": 0.093},
    "cpu_factor_vs_provlight": {"provlake": 7.0, "dfanalyzer": 5.0},
    "memory_fraction": {"provlight": 0.035, "provlake": 0.070, "dfanalyzer": 0.067},
    "memory_factor_vs_provlight": {"provlake": 2.0, "dfanalyzer": 1.9},
    "network_kb_per_s": {"provlight": 3.7},
    "network_factor_vs_provlight": {"provlake": 1.9, "dfanalyzer": 1.8},
    "power_w": {"provlight": 1.43, "provlake": 1.47, "dfanalyzer": 1.49},
    "power_overhead": {"provlight": 0.0258, "provlake": 0.0546, "dfanalyzer": 0.0682},
    "power_factor_vs_provlight": {"provlake": 2.1, "dfanalyzer": 2.6},
}
