"""Entry point: ``python -m repro.harness [targets...]``."""

import sys

from .runner import main

sys.exit(main())
