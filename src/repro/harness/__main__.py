"""Entry point: ``python -m repro.harness [targets...]``.

See ``runner.main`` for the flags (``--reps``, ``--broker-shards``,
``--write-experiments``).
"""

import sys

from .runner import main

sys.exit(main())
