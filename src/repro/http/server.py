"""uWSGI-style HTTP/1.1 server on simulated TCP.

An accept loop hands each connection to a per-connection process that
parses requests and runs them through a bounded worker pool (uWSGI's
process/thread workers) with a calibrated service time per request.
Handlers return an :class:`HttpResponse` or are generators (for handlers
that must themselves wait on simulated events, e.g. a backend insert).
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional

from ..calibration import SERVER_COSTS
from ..net import Host
from ..simkernel import Counter, Resource
from .messages import (
    ConnectionClosed,
    HttpError,
    HttpRequest,
    HttpResponse,
    StreamReader,
    read_request,
)

__all__ = ["HttpServer"]


class HttpServer:
    """A listening HTTP server bound to ``host:port``."""

    def __init__(
        self,
        host: Host,
        port: int,
        handler: Callable[[HttpRequest], "HttpResponse"],
        workers: int = 8,
        service_time_s: float = SERVER_COSTS.http_request_service_s,
        name: Optional[str] = None,
    ):
        self.host = host
        self.env = host.env
        self.port = port
        self.handler = handler
        self.service_time_s = service_time_s
        self.name = name or f"http-{host.name}:{port}"
        self._workers = Resource(host.env, capacity=workers)
        self.listener = host.tcp_listen(port)
        self.requests = Counter("requests")
        self.errors = Counter("errors")
        self.env.process(self._accept_loop(), name=f"{self.name}-accept")

    def _accept_loop(self):
        while True:
            conn = yield self.listener.accept()
            self.env.process(self._serve(conn), name=f"{self.name}-conn")

    def _serve(self, conn):
        reader = StreamReader(conn)
        while True:
            try:
                eof = yield from reader.at_eof_between_messages()
                if eof:
                    return
                request = yield from read_request(reader)
            except ConnectionClosed:
                return
            except HttpError:
                self.errors.record()
                conn.send(HttpResponse(status=400, reason="Bad Request").encode())
                conn.close()
                return
            with self._workers.request() as slot:
                yield slot
                if self.service_time_s > 0:
                    yield self.env.timeout(self.service_time_s)
                try:
                    result = self.handler(request)
                    if inspect.isgenerator(result):
                        response = yield from result
                    else:
                        response = result
                except Exception:  # handler crash -> 500, keep serving
                    self.errors.record()
                    response = HttpResponse(status=500, reason="Internal Server Error")
            if response is None:
                response = HttpResponse(status=204, reason="No Content")
            self.requests.record()
            conn.send(response.encode())
            if not (request.keep_alive() and response.keep_alive()):
                conn.close()
                return

    def __repr__(self) -> str:
        return f"<HttpServer {self.name}>"
