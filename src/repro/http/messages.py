"""HTTP/1.1 message formatting and incremental parsing.

Real bytes: requests/responses are encoded exactly as a ``requests``
client and a uWSGI server would put them on the wire (request line,
canonical headers, ``Content-Length`` framing).  The byte counts behind
the paper's Fig. 6c baseline traffic come from these encoders plus the
TCP/IP headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "HttpError",
    "ConnectionClosed",
    "StreamReader",
    "read_request",
    "read_response",
]

CRLF = b"\r\n"


class HttpError(Exception):
    """Malformed HTTP traffic."""


class ConnectionClosed(HttpError):
    """The peer closed the connection mid-message."""


@dataclass
class HttpRequest:
    method: str = "GET"
    path: str = "/"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.method} {self.path} {self.version}".encode()]
        lines += [f"{k}: {v}".encode() for k, v in headers.items()]
        return CRLF.join(lines) + CRLF + CRLF + self.body

    @property
    def wire_size(self) -> int:
        return len(self.encode())

    def keep_alive(self) -> bool:
        return self.headers.get("Connection", "keep-alive").lower() != "close"


@dataclass
class HttpResponse:
    status: int = 200
    reason: str = "OK"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def encode(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines = [f"{self.version} {self.status} {self.reason}".encode()]
        lines += [f"{k}: {v}".encode() for k, v in headers.items()]
        return CRLF.join(lines) + CRLF + CRLF + self.body

    @property
    def wire_size(self) -> int:
        return len(self.encode())

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def keep_alive(self) -> bool:
        return self.headers.get("Connection", "keep-alive").lower() != "close"


class StreamReader:
    """Buffered reader over a simulated TCP connection.

    All read methods are generators (use ``yield from``); they raise
    :class:`ConnectionClosed` if the stream ends before the requested
    data arrives.
    """

    def __init__(self, conn):
        self.conn = conn
        self._buf = bytearray()
        self._eof = False

    def _fill(self):
        if self._eof:
            raise ConnectionClosed("read past end of stream")
        data = yield self.conn.recv()
        if data == b"":
            self._eof = True
            raise ConnectionClosed("peer closed the connection")
        self._buf.extend(data)

    def read_until(self, delimiter: bytes):
        """Read up to and including ``delimiter``."""
        while True:
            idx = self._buf.find(delimiter)
            if idx >= 0:
                end = idx + len(delimiter)
                data = bytes(self._buf[:end])
                del self._buf[:end]
                return data
            yield from self._fill()

    def read_exactly(self, n: int):
        """Read exactly ``n`` bytes."""
        while len(self._buf) < n:
            yield from self._fill()
        data = bytes(self._buf[:n])
        del self._buf[:n]
        return data

    def at_eof_between_messages(self):
        """Block until either data arrives (False) or a clean EOF (True).

        Lets a keep-alive server distinguish "next request coming" from
        "client closed the idle connection".
        """
        if self._buf:
            return False
        if self._eof:
            return True
        data = yield self.conn.recv()
        if data == b"":
            self._eof = True
            return True
        self._buf.extend(data)
        return False


def _parse_headers(block: bytes) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in block.split(CRLF):
        if not line:
            continue
        if b":" not in line:
            raise HttpError(f"malformed header line: {line!r}")
        key, value = line.split(b":", 1)
        headers[key.decode().strip()] = value.decode().strip()
    return headers


def read_request(reader: StreamReader):
    """Generator parsing one request from ``reader``."""
    head = yield from reader.read_until(CRLF + CRLF)
    request_line, _, header_block = head[:-4].partition(CRLF)
    try:
        method, path, version = request_line.decode().split(" ", 2)
    except ValueError:
        raise HttpError(f"malformed request line: {request_line!r}") from None
    headers = _parse_headers(header_block)
    body = b""
    length = int(headers.get("Content-Length", "0"))
    if length:
        body = yield from reader.read_exactly(length)
    return HttpRequest(method=method, path=path, headers=headers, body=body, version=version)


def read_response(reader: StreamReader):
    """Generator parsing one response from ``reader``."""
    head = yield from reader.read_until(CRLF + CRLF)
    status_line, _, header_block = head[:-4].partition(CRLF)
    parts = status_line.decode().split(" ", 2)
    if len(parts) < 2:
        raise HttpError(f"malformed status line: {status_line!r}")
    version, status = parts[0], parts[1]
    reason = parts[2] if len(parts) > 2 else ""
    try:
        status_code = int(status)
    except ValueError:
        raise HttpError(f"bad status code {status!r}") from None
    headers = _parse_headers(header_block)
    body = b""
    length = int(headers.get("Content-Length", "0"))
    if length:
        body = yield from reader.read_exactly(length)
    return HttpResponse(
        status=status_code, reason=reason, headers=headers, body=body, version=version
    )
