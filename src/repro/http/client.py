"""Blocking HTTP/1.1 client with keep-alive sessions.

Mirrors how the ProvLake/DfAnalyzer capture libraries use ``requests``:
one session per library instance, connection reused across POSTs, and a
fully synchronous request/response cycle — the caller is blocked for
(client serialization +) transmission + server service + response, which
is exactly the overhead mechanism paper Section III measures.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net import ConnectionRefused, Endpoint, Host
from .messages import (
    ConnectionClosed,
    HttpRequest,
    HttpResponse,
    StreamReader,
    read_response,
)

__all__ = ["HttpSession", "HttpRequestError"]


class HttpRequestError(ConnectionError):
    """The request could not be completed."""


class HttpSession:
    """A keep-alive HTTP client bound to one host."""

    def __init__(self, host: Host, user_agent: str = "repro-requests/1.0"):
        self.host = host
        self.env = host.env
        self.user_agent = user_agent
        self._conns: Dict[Endpoint, Tuple[object, StreamReader]] = {}
        self.request_count = 0

    def _connection(self, dest: Endpoint):
        """Generator: return a live (conn, reader), dialing if needed."""
        entry = self._conns.get(dest)
        if entry is not None and not entry[0].closed:
            return entry
        try:
            conn = yield from self.host.tcp_connect(dest)
        except ConnectionRefused as exc:
            raise HttpRequestError(str(exc)) from exc
        entry = (conn, StreamReader(conn))
        self._conns[dest] = entry
        return entry

    def request(
        self,
        method: str,
        dest: Endpoint,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/json",
        _retried: bool = False,
    ):
        """Generator performing one blocking request (use ``yield from``)."""
        conn, reader = yield from self._connection(dest)
        all_headers = {
            "Host": f"{dest[0]}:{dest[1]}",
            "User-Agent": self.user_agent,
            "Accept": "*/*",
            "Connection": "keep-alive",
        }
        if body:
            all_headers["Content-Type"] = content_type
        if headers:
            all_headers.update(headers)
        request = HttpRequest(method=method, path=path, headers=all_headers, body=body)
        try:
            conn.send(request.encode())
            response = yield from read_response(reader)
        except (ConnectionClosed, ConnectionError):
            # stale keep-alive connection: redial once, like requests does
            self._conns.pop(dest, None)
            if _retried:
                raise HttpRequestError(f"{method} {dest}{path} failed") from None
            response = yield from self.request(
                method, dest, path, body=body, headers=headers,
                content_type=content_type, _retried=True,
            )
            return response
        self.request_count += 1
        if not response.keep_alive():
            conn.close()
            self._conns.pop(dest, None)
        return response

    def post(self, dest: Endpoint, path: str, body: bytes, **kw):
        """Generator: POST ``body`` and return the response."""
        response = yield from self.request("POST", dest, path, body=body, **kw)
        return response

    def get(self, dest: Endpoint, path: str, **kw):
        """Generator: GET ``path`` and return the response."""
        response = yield from self.request("GET", dest, path, **kw)
        return response

    def invalidate(self, dest: Endpoint) -> None:
        """Drop the pooled connection to ``dest`` (if any).

        Callers that abandon a request mid-flight (e.g. a timeout racing
        a slow response) must invalidate the connection: its stream still
        carries the half-finished exchange, so reusing it would hand the
        stale response to the next request.
        """
        entry = self._conns.pop(dest, None)
        if entry is not None:
            entry[0].close()

    def close(self) -> None:
        """Close all pooled connections."""
        for conn, _ in self._conns.values():
            conn.close()
        self._conns.clear()

    def __repr__(self) -> str:
        return f"<HttpSession on {self.host.name} ({len(self._conns)} conns)>"
