"""HTTP/1.1 on simulated TCP: blocking keep-alive client, uWSGI-style
multi-worker server, byte-accurate message encoding."""

from .client import HttpRequestError, HttpSession
from .messages import (
    ConnectionClosed,
    HttpError,
    HttpRequest,
    HttpResponse,
    StreamReader,
    read_request,
    read_response,
)
from .server import HttpServer

__all__ = [
    "HttpSession",
    "HttpRequestError",
    "HttpServer",
    "HttpRequest",
    "HttpResponse",
    "HttpError",
    "ConnectionClosed",
    "StreamReader",
    "read_request",
    "read_response",
]
