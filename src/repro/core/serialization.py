"""ProvLight binary wire format: compact type-tagged encoding + zlib.

Design goals from the paper (Table VI "provenance data representation &
payload compression"):

* much smaller than the baselines' JSON (ints/floats in binary, no field
  name repetition inflation);
* cheap to encode on a 600 MHz ARM core;
* compressed with a general-purpose codec before transmission —
  the paper measured ~1 ms for a 100-attribute payload on the device;
* language-agnostic framing (fixed little-endian layout, varints), which
  is the paper's stated future-work path to C/C++ capture clients.

Frame layout::

    magic "PL" | version (1) | flags (1) | body...

flag bit 0: body is zlib-compressed.  Compression is skipped when it does
not pay for itself (tiny status messages).
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

__all__ = [
    "CodecError",
    "encode_value",
    "decode_value",
    "encode_payload",
    "decode_payload",
    "wire_overhead_bytes",
]

MAGIC = b"PL"
VERSION = 1
FLAG_COMPRESSED = 0x01
FLAG_ENCRYPTED = 0x02

# type tags
T_NONE = 0x00
T_FALSE = 0x01
T_TRUE = 0x02
T_INT = 0x03
T_FLOAT = 0x04
T_STR = 0x05
T_BYTES = 0x06
T_LIST = 0x07
T_DICT = 0x08

#: frame header size (magic + version + flags)
HEADER_SIZE = 4


class CodecError(ValueError):
    """Encoding/decoding failure."""


def wire_overhead_bytes() -> int:
    """Fixed framing overhead per payload."""
    return HEADER_SIZE


# -- varints ------------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- value encoding ---------------------------------------------------------


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(T_NONE)
    elif value is True:
        out.append(T_TRUE)
    elif value is False:
        out.append(T_FALSE)
    elif isinstance(value, int):
        out.append(T_INT)
        _write_uvarint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(T_FLOAT)
        out.extend(struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(T_STR)
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(T_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif isinstance(value, (list, tuple)):
        out.append(T_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(T_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        raise CodecError(f"unsupported type {type(value).__name__}")


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise CodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == T_NONE:
        return None, pos
    if tag == T_TRUE:
        return True, pos
    if tag == T_FALSE:
        return False, pos
    if tag == T_INT:
        raw, pos = _read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == T_FLOAT:
        if pos + 8 > len(data):
            raise CodecError("truncated float")
        return struct.unpack("<d", data[pos:pos + 8])[0], pos + 8
    if tag == T_STR:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated string")
        return data[pos:pos + length].decode("utf-8"), pos + length
    if tag == T_BYTES:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated bytes")
        return bytes(data[pos:pos + length]), pos + length
    if tag == T_LIST:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return items, pos
    if tag == T_DICT:
        count, pos = _read_uvarint(data, pos)
        result = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            value, pos = _decode_from(data, pos)
            result[key] = value
        return result, pos
    raise CodecError(f"unknown type tag {tag:#x}")


def encode_value(value: Any) -> bytes:
    """Encode one value to the raw (uncompressed, unframed) format."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Decode one raw value; trailing bytes are an error."""
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes")
    return value


# -- framed payloads ----------------------------------------------------------


def encode_payload(
    value: Any, compress: bool = True, level: int = 6, cipher=None
) -> bytes:
    """Encode and frame a payload.

    Compression is applied when it pays off; if ``cipher`` (a
    :class:`repro.core.security.PayloadCipher`) is given, the body is
    encrypted-then-MACed after compression — the paper's future-work
    "secure the data transmission" extension.
    """
    body = encode_value(value)
    flags = 0
    if compress:
        packed = zlib.compress(body, level)
        if len(packed) < len(body):
            body = packed
            flags |= FLAG_COMPRESSED
    if cipher is not None:
        body = cipher.encrypt(body)
        flags |= FLAG_ENCRYPTED
    return MAGIC + bytes([VERSION, flags]) + body


def decode_payload(data: bytes, cipher=None) -> Any:
    """Decode a framed payload produced by :func:`encode_payload`."""
    if len(data) < HEADER_SIZE or data[:2] != MAGIC:
        raise CodecError("bad magic")
    version, flags = data[2], data[3]
    if version != VERSION:
        raise CodecError(f"unsupported version {version}")
    body = data[HEADER_SIZE:]
    if flags & FLAG_ENCRYPTED:
        if cipher is None:
            raise CodecError("payload is encrypted but no cipher was provided")
        from .security import AuthenticationError

        try:
            body = cipher.decrypt(body)
        except AuthenticationError as exc:
            raise CodecError(f"decryption failed: {exc}") from exc
    if flags & FLAG_COMPRESSED:
        try:
            body = zlib.decompress(body)
        except zlib.error as exc:
            raise CodecError(f"decompression failed: {exc}") from exc
    return decode_value(body)
