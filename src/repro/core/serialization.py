"""ProvLight binary wire format: compact type-tagged encoding + zlib.

Design goals from the paper (Table VI "provenance data representation &
payload compression"):

* much smaller than the baselines' JSON (ints/floats in binary, no field
  name repetition inflation);
* cheap to encode on a 600 MHz ARM core;
* compressed with a general-purpose codec before transmission —
  the paper measured ~1 ms for a 100-attribute payload on the device;
* language-agnostic framing (fixed little-endian layout, varints), which
  is the paper's stated future-work path to C/C++ capture clients.

Frame layout (both versions)::

    magic "PL" | version (1) | flags (1) | body...

flag bit 0: body is zlib-compressed; flag bit 1: body is encrypted
(encrypt-then-MAC, applied *after* compression).  Compression is skipped
when it does not pay for itself (tiny status messages) and — since v2 —
is not even attempted below :data:`MIN_COMPRESS_SIZE` bytes, so small
records never pay for a wasted ``zlib.compress`` call.

Version 1 body: one value in the type-tagged encoding, strings inline.

Version 2 body: a *string table* followed by one value.  Every string —
dict keys and string values alike — is stored once in the table and
referenced from the value by a varint index (tag ``T_STRREF``).  Field
names like ``"attributes"`` or ``"workflow_id"`` repeat in every record,
so interning compounds across grouped payloads (the paper's Tables
III/VIII path).  See ``docs/wire-format.md`` for the full layout.

:func:`encode_payload` emits v2 by default; :func:`decode_payload`
transparently accepts both versions so old captures and foreign v1
clients keep working.  :func:`encode_value`/:func:`decode_value` remain
the raw v1 value codec (canonical bytes unchanged from the seed
implementation).
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

__all__ = [
    "CodecError",
    "encode_value",
    "decode_value",
    "encode_payload",
    "decode_payload",
    "wire_overhead_bytes",
    "VERSION",
    "VERSION_1",
    "VERSION_2",
    "MIN_COMPRESS_SIZE",
]

MAGIC = b"PL"
VERSION_1 = 1
VERSION_2 = 2
#: default wire version emitted by :func:`encode_payload`
VERSION = VERSION_2
FLAG_COMPRESSED = 0x01
FLAG_ENCRYPTED = 0x02

# type tags
T_NONE = 0x00
T_FALSE = 0x01
T_TRUE = 0x02
T_INT = 0x03
T_FLOAT = 0x04
T_STR = 0x05
T_BYTES = 0x06
T_LIST = 0x07
T_DICT = 0x08
#: v2 only: varint index into the payload's string table
T_STRREF = 0x09
#: v2 only: homogeneous list of ints in 0..255, stored as raw octets
T_U8ARR = 0x0A
#: v2 only: homogeneous list of ints, stored as zigzag varints (no tags)
T_INTARR = 0x0B
#: v2 only: homogeneous list of floats, stored as packed little-endian f64
T_F64ARR = 0x0C

#: frame header size (magic + version + flags)
HEADER_SIZE = 4

#: bodies smaller than this skip the compress-and-compare attempt
#: entirely — zlib cannot win on them and the attempt itself costs more
#: than the whole encode
MIN_COMPRESS_SIZE = 64

#: largest zigzag value a 64-bit decoder can represent
_U64_MAX = (1 << 64) - 1

_pack_float = struct.Struct("<d").pack
_unpack_float = struct.Struct("<d").unpack_from

#: cached Struct objects for packed f64 arrays, keyed by element count
_F64_STRUCTS: dict = {}


def _f64_struct(count: int) -> struct.Struct:
    cached = _F64_STRUCTS.get(count)
    if cached is None:
        cached = _F64_STRUCTS[count] = struct.Struct(f"<{count}d")
        if len(_F64_STRUCTS) > 1024:
            _F64_STRUCTS.clear()
            _F64_STRUCTS[count] = cached
    return cached

#: precomputed frame headers per (version, flags) — satellite of the
#: hot-path issue: no per-record ``MAGIC + bytes([VERSION, flags])``
_HEADERS = {
    (version, flags): MAGIC + bytes((version, flags))
    for version in (VERSION_1, VERSION_2)
    for flags in range(4)
}


class CodecError(ValueError):
    """Encoding/decoding failure."""


def wire_overhead_bytes() -> int:
    """Fixed framing overhead per payload."""
    return HEADER_SIZE


# -- varints ------------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result > _U64_MAX:
                # a 10-octet varint can carry up to 70 bits; the wire
                # contract (and any C decoder) is u64, and the encoder
                # refuses to emit more — mirror that on decode
                raise CodecError("varint exceeds the 64-bit wire range")
            return result, pos
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- v1 value encoding --------------------------------------------------------
#
# Kept byte-for-byte identical to the seed implementation: these bytes are
# the cross-language reference (tests/core/test_cross_language_wire.py)
# and the baseline the v2 fast path is benchmarked against.


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(T_NONE)
    elif value is True:
        out.append(T_TRUE)
    elif value is False:
        out.append(T_FALSE)
    elif isinstance(value, int):
        z = _zigzag(value)
        if z > _U64_MAX:
            # the decoder (and any C implementation of the wire contract)
            # reads u64 varints; emitting more would produce undecodable
            # bytes, so fail at encode time like the v2 path does
            raise CodecError(f"integer {value} exceeds the 64-bit wire range")
        out.append(T_INT)
        _write_uvarint(out, z)
    elif isinstance(value, float):
        out.append(T_FLOAT)
        out.extend(struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(T_STR)
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(T_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif isinstance(value, (list, tuple)):
        out.append(T_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(T_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        raise CodecError(f"unsupported type {type(value).__name__}")


# -- v2 value encoding --------------------------------------------------------


def _encode_v2_into(out: bytearray, value: Any, index: dict, table: list) -> None:
    """Single-pass v2 body encoder.

    Strings go through the ``index``/``table`` intern pair and are emitted
    as ``T_STRREF`` + varint.  The common inner-loop cases (small ints in
    attribute arrays, str dict keys) are inlined to avoid a Python call
    per element — this loop bounds how many simulated devices a
    scalability run can drive.
    """
    append = out.append
    t = type(value)
    if t is int:
        z = (value << 1) if value >= 0 else ((-value) << 1) - 1
        if z > _U64_MAX:
            raise CodecError(f"integer {value} exceeds the 64-bit wire range")
        append(T_INT)
        while z > 0x7F:
            append(z & 0x7F | 0x80)
            z >>= 7
        append(z)
    elif t is str:
        i = index.get(value)
        if i is None:
            index[value] = i = len(table)
            table.append(value)
        append(T_STRREF)
        while i > 0x7F:
            append(i & 0x7F | 0x80)
            i >>= 7
        append(i)
    elif t is list or t is tuple:
        n = len(value)
        if n > 3:
            # columnar fast path: attribute arrays are almost always
            # homogeneous numbers, which pack/unpack in a single C call
            kinds = set(map(type, value))
            if kinds == {int}:
                try:
                    raw = bytes(value)  # succeeds iff every item is 0..255
                except (ValueError, TypeError, OverflowError):
                    raw = None
                if raw is not None:
                    append(T_U8ARR)
                    while n > 0x7F:
                        append(n & 0x7F | 0x80)
                        n >>= 7
                    append(n)
                    out += raw
                    return
                append(T_INTARR)
                while n > 0x7F:
                    append(n & 0x7F | 0x80)
                    n >>= 7
                append(n)
                for item in value:
                    z = (item << 1) if item >= 0 else ((-item) << 1) - 1
                    if z > _U64_MAX:
                        raise CodecError(
                            f"integer {item} exceeds the 64-bit wire range"
                        )
                    while z > 0x7F:
                        append(z & 0x7F | 0x80)
                        z >>= 7
                    append(z)
                return
            if kinds == {float}:
                append(T_F64ARR)
                count = n
                while n > 0x7F:
                    append(n & 0x7F | 0x80)
                    n >>= 7
                append(n)
                out += _f64_struct(count).pack(*value)
                return
        append(T_LIST)
        while n > 0x7F:
            append(n & 0x7F | 0x80)
            n >>= 7
        append(n)
        index_get = index.get
        for item in value:
            ti = type(item)
            if ti is int:
                z = (item << 1) if item >= 0 else ((-item) << 1) - 1
                if z > _U64_MAX:
                    raise CodecError(f"integer {item} exceeds the 64-bit wire range")
                append(T_INT)
                while z > 0x7F:
                    append(z & 0x7F | 0x80)
                    z >>= 7
                append(z)
            elif ti is str:
                i = index_get(item)
                if i is None:
                    index[item] = i = len(table)
                    table.append(item)
                append(T_STRREF)
                while i > 0x7F:
                    append(i & 0x7F | 0x80)
                    i >>= 7
                append(i)
            else:
                _encode_v2_into(out, item, index, table)
    elif t is dict:
        append(T_DICT)
        n = len(value)
        while n > 0x7F:
            append(n & 0x7F | 0x80)
            n >>= 7
        append(n)
        index_get = index.get
        for key, item in value.items():
            if type(key) is not str:
                if not isinstance(key, str):
                    raise CodecError(
                        f"dict keys must be str, got {type(key).__name__}"
                    )
                key = str(key)
            i = index_get(key)
            if i is None:
                index[key] = i = len(table)
                table.append(key)
            append(T_STRREF)
            while i > 0x7F:
                append(i & 0x7F | 0x80)
                i >>= 7
            append(i)
            ti = type(item)
            if ti is int:
                z = (item << 1) if item >= 0 else ((-item) << 1) - 1
                if z > _U64_MAX:
                    raise CodecError(f"integer {item} exceeds the 64-bit wire range")
                append(T_INT)
                while z > 0x7F:
                    append(z & 0x7F | 0x80)
                    z >>= 7
                append(z)
            elif ti is str:
                i = index_get(item)
                if i is None:
                    index[item] = i = len(table)
                    table.append(item)
                append(T_STRREF)
                while i > 0x7F:
                    append(i & 0x7F | 0x80)
                    i >>= 7
                append(i)
            else:
                _encode_v2_into(out, item, index, table)
    elif t is float:
        append(T_FLOAT)
        out += _pack_float(value)
    elif value is None:
        append(T_NONE)
    elif value is True:
        append(T_TRUE)
    elif value is False:
        append(T_FALSE)
    elif t is bytes or t is bytearray:
        append(T_BYTES)
        n = len(value)
        while n > 0x7F:
            append(n & 0x7F | 0x80)
            n >>= 7
        append(n)
        out += value
    else:
        # subclasses of the supported types (IntEnum, str subclasses, ...)
        if isinstance(value, bool):
            append(T_TRUE if value else T_FALSE)
        elif isinstance(value, int):
            _encode_v2_into(out, int(value), index, table)
        elif isinstance(value, float):
            _encode_v2_into(out, float(value), index, table)
        elif isinstance(value, str):
            _encode_v2_into(out, str(value), index, table)
        elif isinstance(value, (bytes, bytearray)):
            _encode_v2_into(out, bytes(value), index, table)
        elif isinstance(value, (list, tuple)):
            _encode_v2_into(out, list(value), index, table)
        elif isinstance(value, dict):
            _encode_v2_into(out, dict(value), index, table)
        else:
            raise CodecError(f"unsupported type {type(value).__name__}")


#: reusable scratch buffers for :func:`_encode_body_v2` (the per-payload
#: bytearray is the single biggest allocation of the encode path)
_SCRATCH_POOL: list = []
_SCRATCH_POOL_MAX = 4

#: length-prefixed utf-8 bytes of recurring table strings (field names
#: repeat in every record; one-off task ids are evicted by the periodic
#: clear)
_UTF8_CACHE: dict = {}
_UTF8_CACHE_MAX = 4096
#: entries above this many encoded bytes are not cached (one-off blobs)
_UTF8_CACHE_ENTRY_MAX = 4096


def _table_entry_bytes(entry: str) -> bytes:
    raw = entry.encode("utf-8")
    n = len(raw)
    prefix = bytearray()
    while n > 0x7F:
        prefix.append(n & 0x7F | 0x80)
        n >>= 7
    prefix.append(n)
    return bytes(prefix) + raw


def _encode_body_v2(value: Any) -> bytearray:
    """Encode ``value`` as a v2 body: length-prefixed string table, value."""
    scratch = _SCRATCH_POOL.pop() if _SCRATCH_POOL else bytearray()
    try:
        table: list = []
        _encode_v2_into(scratch, value, {}, table)
        head = bytearray()
        append = head.append
        n = len(table)
        while n > 0x7F:
            append(n & 0x7F | 0x80)
            n >>= 7
        append(n)
        cache_get = _UTF8_CACHE.get
        for entry in table:
            prefixed = cache_get(entry)
            if prefixed is None:
                prefixed = _table_entry_bytes(entry)
                # mirror the decode-side _TABLE_CACHE_ENTRY_MAX guard:
                # a one-off huge string must not pin megabytes in the
                # module-level cache until the wholesale clear
                if len(prefixed) <= _UTF8_CACHE_ENTRY_MAX:
                    if len(_UTF8_CACHE) >= _UTF8_CACHE_MAX:
                        _UTF8_CACHE.clear()
                    _UTF8_CACHE[entry] = prefixed
            head += prefixed
        out = bytearray()
        append = out.append
        n = len(head)
        while n > 0x7F:
            append(n & 0x7F | 0x80)
            n >>= 7
        append(n)
        out += head
        out += scratch
        return out
    finally:
        scratch.clear()
        if len(_SCRATCH_POOL) < _SCRATCH_POOL_MAX:
            _SCRATCH_POOL.append(scratch)


# -- decoding -----------------------------------------------------------------
#
# One decoder serves both versions: ``table`` is None for v1 bodies (which
# must not contain T_STRREF).  ``buf`` is a memoryview so str/float reads
# never materialize intermediate slices; ``limit`` is len(buf), hoisted
# out of the inner loop.


def _decode_from(buf, pos: int, table, limit: int):
    if pos >= limit:
        raise CodecError("truncated value")
    tag = buf[pos]
    pos += 1
    if tag == T_INT:
        if pos >= limit:
            raise CodecError("truncated varint")
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            z = byte
        else:
            z = byte & 0x7F
            shift = 7
            while True:
                if pos >= limit:
                    raise CodecError("truncated varint")
                byte = buf[pos]
                pos += 1
                z |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
                if shift > 70:
                    raise CodecError("varint too long")
            if z > _U64_MAX:
                raise CodecError("varint exceeds the 64-bit wire range")
        return ((z >> 1) if not z & 1 else -((z + 1) >> 1)), pos
    if tag == T_STRREF:
        if table is None:
            raise CodecError("string reference outside a v2 frame")
        if pos < limit and buf[pos] < 0x80:
            i = buf[pos]
            pos += 1
        else:
            i, pos = _read_uvarint(buf, pos)
        if i >= len(table):
            raise CodecError(f"string ref {i} out of table range")
        return table[i], pos
    if tag == T_STR:
        length, pos = _read_uvarint(buf, pos)
        end = pos + length
        if end > limit:
            raise CodecError("truncated string")
        try:
            return str(buf[pos:end], "utf-8"), end
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string: {exc}") from exc
    if tag == T_LIST:
        count, pos = _read_uvarint(buf, pos)
        if count > limit - pos:
            raise CodecError("truncated list")
        items = []
        append = items.append
        tlen = len(table) if table is not None else -1
        for _ in range(count):
            # fast paths: single-byte ints and string refs dominate
            if pos + 1 < limit:
                t2 = buf[pos]
                b = buf[pos + 1]
                if t2 == T_INT and b < 0x80:
                    pos += 2
                    append((b >> 1) if not b & 1 else -((b + 1) >> 1))
                    continue
                if t2 == T_STRREF and b < 0x80 and 0 <= b < tlen:
                    pos += 2
                    append(table[b])
                    continue
            item, pos = _decode_from(buf, pos, table, limit)
            append(item)
        return items, pos
    if tag == T_DICT:
        count, pos = _read_uvarint(buf, pos)
        if count > limit - pos:
            raise CodecError("truncated dict")
        result = {}
        tlen = len(table) if table is not None else -1
        for _ in range(count):
            if (
                pos + 1 < limit
                and buf[pos] == T_STRREF
                and buf[pos + 1] < 0x80
                and buf[pos + 1] < tlen
            ):
                key = table[buf[pos + 1]]
                pos += 2
            else:
                key, pos = _decode_from(buf, pos, table, limit)
            if pos + 1 < limit:
                t2 = buf[pos]
                b = buf[pos + 1]
                if t2 == T_INT and b < 0x80:
                    value = (b >> 1) if not b & 1 else -((b + 1) >> 1)
                    pos += 2
                elif t2 == T_STRREF and b < 0x80 and b < tlen:
                    value = table[b]
                    pos += 2
                else:
                    value, pos = _decode_from(buf, pos, table, limit)
            else:
                value, pos = _decode_from(buf, pos, table, limit)
            try:
                result[key] = value
            except TypeError as exc:
                raise CodecError(f"unhashable dict key: {exc}") from exc
        return result, pos
    if tag == T_FLOAT:
        if pos + 8 > limit:
            raise CodecError("truncated float")
        return _unpack_float(buf, pos)[0], pos + 8
    if tag == T_NONE:
        return None, pos
    if tag == T_TRUE:
        return True, pos
    if tag == T_FALSE:
        return False, pos
    if tag == T_BYTES:
        length, pos = _read_uvarint(buf, pos)
        end = pos + length
        if end > limit:
            raise CodecError("truncated bytes")
        return bytes(buf[pos:end]), end
    if tag == T_U8ARR:
        if table is None:
            raise CodecError("typed array outside a v2 frame")
        count, pos = _read_uvarint(buf, pos)
        end = pos + count
        if end > limit:
            raise CodecError("truncated u8 array")
        return list(buf[pos:end]), end
    if tag == T_INTARR:
        if table is None:
            raise CodecError("typed array outside a v2 frame")
        count, pos = _read_uvarint(buf, pos)
        if count > limit - pos:
            raise CodecError("truncated int array")
        items = []
        append = items.append
        for _ in range(count):
            if pos >= limit:
                raise CodecError("truncated varint")
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                z = byte
            else:
                z = byte & 0x7F
                shift = 7
                while True:
                    if pos >= limit:
                        raise CodecError("truncated varint")
                    byte = buf[pos]
                    pos += 1
                    z |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 70:
                        raise CodecError("varint too long")
                if z > _U64_MAX:
                    raise CodecError("varint exceeds the 64-bit wire range")
            append((z >> 1) if not z & 1 else -((z + 1) >> 1))
        return items, pos
    if tag == T_F64ARR:
        if table is None:
            raise CodecError("typed array outside a v2 frame")
        count, pos = _read_uvarint(buf, pos)
        if count > (limit - pos) // 8:
            raise CodecError("truncated f64 array")
        return list(_f64_struct(count).unpack_from(buf, pos)), pos + count * 8
    raise CodecError(f"unknown type tag {tag:#x}")


#: memoized parsed string tables keyed by their raw section bytes.
#: Tables also intern one-off string *values* (task ids), so realistic
#: traffic mixes hits (repeated record shapes, replayed captures,
#: benchmark loops) with misses; the miss cost is one small bytes() copy
#: + dict probe (~5% of a table parse), while a hit skips the parse
#: entirely.  Entries above _TABLE_CACHE_ENTRY_MAX bytes are not cached
#: to bound retained memory alongside the entry-count clear.
_TABLE_CACHE: dict = {}
_TABLE_CACHE_MAX = 1024
_TABLE_CACHE_ENTRY_MAX = 4096


def _read_string_table(buf, pos: int, limit: int):
    """Read the length-prefixed v2 string table; returns (table, pos)."""
    nbytes, pos = _read_uvarint(buf, pos)
    end_of_table = pos + nbytes
    if end_of_table > limit:
        raise CodecError("truncated string table")
    section = None
    if nbytes <= _TABLE_CACHE_ENTRY_MAX:
        section = bytes(buf[pos:end_of_table])
        table = _TABLE_CACHE.get(section)
        if table is not None:
            return table, end_of_table
        src, tpos, end_src = section, 0, nbytes
    else:
        # too large to memoize: parse in place from the memoryview
        src, tpos, end_src = buf, pos, end_of_table
    count, tpos = _read_uvarint(src, tpos)
    if count > end_src - tpos:
        raise CodecError("truncated string table")
    table = []
    append = table.append
    for _ in range(count):
        if tpos < end_src and src[tpos] < 0x80:
            length = src[tpos]
            tpos += 1
        else:
            length, tpos = _read_uvarint(src, tpos)
        end = tpos + length
        if end > end_src:
            raise CodecError("truncated string table")
        try:
            append(str(src[tpos:end], "utf-8"))
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string table: {exc}") from exc
        tpos = end
    if tpos != end_src:
        raise CodecError("string table length mismatch")
    if section is not None:
        if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
            _TABLE_CACHE.clear()
        _TABLE_CACHE[section] = table
    return table, end_of_table


# -- raw value API (v1 format) ------------------------------------------------


def encode_value(value: Any) -> bytes:
    """Encode one value to the raw v1 (uncompressed, unframed) format."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Decode one raw v1 value; trailing bytes are an error."""
    buf = memoryview(data)
    value, pos = _decode_from(buf, 0, None, len(buf))
    if pos != len(buf):
        raise CodecError(f"{len(buf) - pos} trailing bytes")
    return value


# -- framed payloads ----------------------------------------------------------


def encode_payload(
    value: Any,
    compress: bool = True,
    level: int = 6,
    cipher=None,
    version: int = VERSION,
) -> bytes:
    """Encode and frame a payload (v2 wire format by default).

    Compression is applied when it pays off — and not even attempted for
    bodies under :data:`MIN_COMPRESS_SIZE`; if ``cipher`` (a
    :class:`repro.core.security.PayloadCipher`) is given, the body is
    encrypted-then-MACed after compression — the paper's future-work
    "secure the data transmission" extension.  Pass ``version=1`` to emit
    the legacy inline-string frame for v1-only consumers.
    """
    if version == VERSION_2:
        body: Any = _encode_body_v2(value)
    elif version == VERSION_1:
        body = bytearray()
        _encode_into(body, value)
    else:
        raise CodecError(f"unsupported version {version}")
    flags = 0
    if compress and len(body) >= MIN_COMPRESS_SIZE:
        packed = zlib.compress(body, level)
        if len(packed) < len(body):
            body = packed
            flags |= FLAG_COMPRESSED
    if cipher is not None:
        body = cipher.encrypt(body if isinstance(body, bytes) else bytes(body))
        flags |= FLAG_ENCRYPTED
    return _HEADERS[version, flags] + body


def decode_payload(data: bytes, cipher=None) -> Any:
    """Decode a framed payload produced by :func:`encode_payload`.

    Accepts both v1 and v2 frames, so old captures and the MQTT-SN path
    keep working across the version bump.
    """
    if len(data) < HEADER_SIZE or data[:2] != MAGIC:
        raise CodecError("bad magic")
    version, flags = data[2], data[3]
    if version != VERSION_2 and version != VERSION_1:
        raise CodecError(f"unsupported version {version}")
    body = memoryview(data)[HEADER_SIZE:]
    if flags & FLAG_ENCRYPTED:
        if cipher is None:
            raise CodecError("payload is encrypted but no cipher was provided")
        from .security import AuthenticationError

        try:
            body = memoryview(cipher.decrypt(bytes(body)))
        except AuthenticationError as exc:
            raise CodecError(f"decryption failed: {exc}") from exc
    if flags & FLAG_COMPRESSED:
        try:
            body = memoryview(zlib.decompress(body))
        except zlib.error as exc:
            raise CodecError(f"decompression failed: {exc}") from exc
    limit = len(body)
    if version == VERSION_1:
        value, pos = _decode_from(body, 0, None, limit)
    else:
        table, pos = _read_string_table(body, 0, limit)
        value, pos = _decode_from(body, pos, table, limit)
    if pos != limit:
        raise CodecError(f"{limit - pos} trailing bytes")
    return value
