"""Provenance data translator: ProvLight wire records -> target systems.

The ProvLight server runs one translator per topic (paper Fig. 5).  The
translator decodes the (possibly grouped, compressed) payload and emits
the data model of the configured provenance system.  Users extend this
by registering additional targets — the mechanism the paper describes
for integrating with "DfAnalyzer, ProvLake, PROV-IO, Komadu, among
others".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..capture.envelope import unwrap_payload
from .provdm import document_from_records
from .serialization import decode_payload

__all__ = [
    "TranslationError",
    "Translator",
    "records_from_payload",
    "to_dfanalyzer",
    "to_prov_json",
    "to_provlake",
]


class TranslationError(ValueError):
    """Payload could not be translated."""


def records_from_payload(payload: bytes, cipher=None) -> List[Dict[str, Any]]:
    """Decode a wire payload into a list of records.

    A payload is either one record (dict) or a group (list of dicts),
    optionally wrapped in a durable-capture dedup envelope (stripped
    transparently here; *deduplication* is the sink's job, the decode
    path must just never choke on an enveloped payload).  The decoder
    only ever produces plain dicts/lists, so exact type checks suffice
    on this per-message path.
    """
    envelope = unwrap_payload(payload)
    if envelope is not None:
        payload = envelope[2]
    value = decode_payload(payload, cipher=cipher)
    if type(value) is dict:
        return [value]
    if type(value) is list and all(type(r) is dict for r in value):
        return value
    raise TranslationError(f"unexpected payload structure: {type(value).__name__}")


def to_dfanalyzer(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Translate to the DfAnalyzer ingestion schema.

    DfAnalyzer models dataflows / transformations / tasks / datasets; the
    mapping is: workflow -> dataflow tag, transformation_id ->
    transformation tag, data items -> datasets with attribute elements.
    """
    out = []
    for record in records:
        kind = record.get("kind")
        if kind in ("workflow_begin", "workflow_end"):
            out.append(
                {
                    "type": "dataflow",
                    "dataflow_tag": str(record["workflow_id"]),
                    "event": "begin" if kind == "workflow_begin" else "end",
                    "time": record.get("time"),
                }
            )
            continue
        if kind not in ("task_begin", "task_end"):
            raise TranslationError(f"unknown record kind {kind!r}")
        out.append(
            {
                "type": "task",
                "dataflow_tag": str(record["workflow_id"]),
                "transformation_tag": str(record.get("transformation_id")),
                "task_id": record["task_id"],
                "status": "RUNNING" if kind == "task_begin" else "FINISHED",
                "dependencies": list(record.get("dependencies", ())),
                "time": record.get("time"),
                "datasets": [
                    {
                        "tag": str(item["id"]),
                        "direction": "input" if kind == "task_begin" else "output",
                        "derivations": list(item.get("derivations", ())),
                        "elements": dict(item.get("attributes", {})),
                    }
                    for item in record.get("data", ())
                ],
            }
        )
    return out


def to_prov_json(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Translate to a PROV-JSON document (via the PROV-DM mapping)."""
    return document_from_records(records).to_prov_json()


def to_provlake(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Translate to a ProvLake-style workflow/task message list."""
    out = []
    for record in records:
        kind = record.get("kind")
        if kind in ("workflow_begin", "workflow_end"):
            out.append(
                {
                    "prov_obj": "workflow",
                    "wf_execution": str(record["workflow_id"]),
                    "act_type": kind.split("_")[1],
                    "timestamp": record.get("time"),
                }
            )
            continue
        if kind not in ("task_begin", "task_end"):
            raise TranslationError(f"unknown record kind {kind!r}")
        values_in, values_out = {}, {}
        bucket = values_in if kind == "task_begin" else values_out
        for item in record.get("data", ()):
            bucket[str(item["id"])] = dict(item.get("attributes", {}))
        out.append(
            {
                "prov_obj": "task",
                "wf_execution": str(record["workflow_id"]),
                "data_transformation": str(record.get("transformation_id")),
                "task_id": record["task_id"],
                "status": "RUNNING" if kind == "task_begin" else "FINISHED",
                "used": values_in,
                "generated": values_out,
                "timestamp": record.get("time"),
            }
        )
    return out


_TARGETS: Dict[str, Callable[[List[Dict[str, Any]]], Any]] = {
    "dfanalyzer": to_dfanalyzer,
    "prov-json": to_prov_json,
    "provlake": to_provlake,
    "raw": lambda records: records,
}


class Translator:
    """Decodes payloads and translates them to a target data model."""

    def __init__(self, target: str = "dfanalyzer", cipher=None):
        if target not in _TARGETS:
            raise ValueError(
                f"unknown target {target!r}; known: {sorted(_TARGETS)}"
            )
        self.target = target
        self.cipher = cipher
        self._translate = _TARGETS[target]

    @classmethod
    def register_target(
        cls, name: str, fn: Callable[[List[Dict[str, Any]]], Any]
    ) -> None:
        """Extend the translator with a new provenance-system format."""
        _TARGETS[name] = fn

    @classmethod
    def known_targets(cls) -> List[str]:
        return sorted(_TARGETS)

    def translate_payload(self, payload: bytes):
        """Decode a wire payload and translate it; returns
        ``(records, translated)``."""
        records = records_from_payload(payload, cipher=self.cipher)
        return records, self._translate(records)
