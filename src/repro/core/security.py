"""Payload protection for Edge-to-Cloud transmission (paper future work).

The paper's conclusion lists "secure the data transmission from the Edge
devices to the provenance system" as future work; this module implements
that extension for the reproduction: authenticated payload encryption
between the capture client and the provenance data translator, sharing a
pre-provisioned symmetric key.

Construction (standard-library only, since the environment is offline):

* keystream: SHA-256 in counter mode over ``key || nonce || counter``
  (a textbook stream cipher — fine for a research prototype, documented
  as NOT a substitute for a vetted AEAD in production);
* integrity/authenticity: HMAC-SHA256 over ``nonce || ciphertext``,
  truncated to 16 bytes (encrypt-then-MAC);
* nonce: 16 random bytes per payload.

Wire layout: ``nonce (16) | tag (16) | ciphertext``.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Optional

__all__ = ["PayloadCipher", "AuthenticationError", "derive_key"]

NONCE_SIZE = 16
TAG_SIZE = 16
_BLOCK = 32  # sha256 digest size


class AuthenticationError(ValueError):
    """Payload failed integrity verification (tampered or wrong key)."""


def derive_key(secret: str | bytes, salt: str | bytes = "provlight") -> bytes:
    """Derive a 32-byte key from a shared secret (PBKDF2-HMAC-SHA256)."""
    if isinstance(secret, str):
        secret = secret.encode()
    if isinstance(salt, str):
        salt = salt.encode()
    return hashlib.pbkdf2_hmac("sha256", secret, salt, iterations=10_000)


class PayloadCipher:
    """Symmetric authenticated encryption for provenance payloads."""

    def __init__(self, key: bytes, rng: Optional[object] = None):
        if not isinstance(key, (bytes, bytearray)) or len(key) < 16:
            raise ValueError("key must be at least 16 bytes; use derive_key()")
        self._key = bytes(key)
        self._mac_key = hashlib.sha256(b"mac" + self._key).digest()
        self._rng = rng  # numpy Generator for deterministic tests

    # -- internals ---------------------------------------------------------
    def _nonce(self) -> bytes:
        if self._rng is not None:
            return bytes(int(b) for b in self._rng.integers(0, 256, NONCE_SIZE))
        return os.urandom(NONCE_SIZE)

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hashlib.sha256(
                self._key + nonce + counter.to_bytes(8, "little")
            ).digest()
            out.extend(block)
            counter += 1
        return bytes(out[:length])

    def _tag(self, nonce: bytes, ciphertext: bytes) -> bytes:
        return hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()[
            :TAG_SIZE
        ]

    # -- API ---------------------------------------------------------------
    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt-then-MAC; returns ``nonce | tag | ciphertext``."""
        if not isinstance(plaintext, (bytes, bytearray)):
            raise TypeError("plaintext must be bytes")
        nonce = self._nonce()
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        return nonce + self._tag(nonce, ciphertext) + ciphertext

    def decrypt(self, blob: bytes) -> bytes:
        """Verify and decrypt; raises :class:`AuthenticationError`."""
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise AuthenticationError("payload too short")
        nonce = blob[:NONCE_SIZE]
        tag = blob[NONCE_SIZE : NONCE_SIZE + TAG_SIZE]
        ciphertext = blob[NONCE_SIZE + TAG_SIZE :]
        expected = self._tag(nonce, ciphertext)
        if not hmac.compare_digest(tag, expected):
            raise AuthenticationError("authentication tag mismatch")
        stream = self._keystream(nonce, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))

    @property
    def overhead_bytes(self) -> int:
        """Wire growth per payload."""
        return NONCE_SIZE + TAG_SIZE
