"""W3C PROV-DM core structures.

The paper's Table V maps ProvLight's three classes onto PROV-DM:

========  ==========  =============================================
PROV-DM   ProvLight   relationships
========  ==========  =============================================
Agent     Workflow    —
Activity  Task        wasAssociatedWith(workflow), wasInformedBy
                      (dependencies), used / wasGeneratedBy (data)
Entity    Data        wasAttributedTo(workflow), wasDerivedFrom
========  ==========  =============================================

:class:`ProvDocument` is the interchange structure produced by the
provenance data translator; :func:`document_from_records` rebuilds a
document from captured ProvLight records, which the tests use to verify
the Table V mapping end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "RELATION_TYPES",
    "ProvError",
    "ProvDocument",
    "document_from_records",
]

RELATION_TYPES = (
    "wasAssociatedWith",
    "wasAttributedTo",
    "used",
    "wasGeneratedBy",
    "wasInformedBy",
    "wasDerivedFrom",
)


class ProvError(ValueError):
    """Invalid PROV-DM construction."""


@dataclass
class ProvDocument:
    """A minimal PROV-DM graph: typed nodes plus typed binary relations."""

    agents: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    activities: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    entities: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    relations: List[Tuple[str, str, str]] = field(default_factory=list)

    # -- node constructors -------------------------------------------------
    def agent(self, agent_id: str, **attrs) -> str:
        self.agents.setdefault(str(agent_id), {}).update(attrs)
        return str(agent_id)

    def activity(
        self,
        activity_id: str,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
        **attrs,
    ) -> str:
        record = self.activities.setdefault(str(activity_id), {})
        if start_time is not None:
            record["startTime"] = start_time
        if end_time is not None:
            record["endTime"] = end_time
        record.update(attrs)
        return str(activity_id)

    def entity(self, entity_id: str, **attrs) -> str:
        self.entities.setdefault(str(entity_id), {}).update(attrs)
        return str(entity_id)

    # -- relations -----------------------------------------------------------
    def _relate(self, relation: str, src: str, dst: str) -> None:
        if relation not in RELATION_TYPES:
            raise ProvError(f"unknown relation {relation!r}")
        entry = (relation, str(src), str(dst))
        if entry not in self.relations:
            self.relations.append(entry)

    def was_associated_with(self, activity: str, agent: str) -> None:
        self._relate("wasAssociatedWith", activity, agent)

    def was_attributed_to(self, entity: str, agent: str) -> None:
        self._relate("wasAttributedTo", entity, agent)

    def used(self, activity: str, entity: str) -> None:
        self._relate("used", activity, entity)

    def was_generated_by(self, entity: str, activity: str) -> None:
        self._relate("wasGeneratedBy", entity, activity)

    def was_informed_by(self, informed: str, informant: str) -> None:
        self._relate("wasInformedBy", informed, informant)

    def was_derived_from(self, derived: str, source: str) -> None:
        self._relate("wasDerivedFrom", derived, source)

    # -- queries / validation -----------------------------------------------
    def relations_of(self, relation: str) -> List[Tuple[str, str]]:
        """All (src, dst) pairs of the given relation type."""
        return [(s, d) for r, s, d in self.relations if r == relation]

    def validate(self) -> None:
        """Check referential integrity of every relation.

        Raises :class:`ProvError` on dangling references or relations
        whose endpoints have the wrong PROV type.
        """
        domains = {
            "wasAssociatedWith": (self.activities, self.agents),
            "wasAttributedTo": (self.entities, self.agents),
            "used": (self.activities, self.entities),
            "wasGeneratedBy": (self.entities, self.activities),
            "wasInformedBy": (self.activities, self.activities),
            "wasDerivedFrom": (self.entities, self.entities),
        }
        for relation, src, dst in self.relations:
            src_domain, dst_domain = domains[relation]
            if src not in src_domain:
                raise ProvError(f"{relation}: unknown source {src!r}")
            if dst not in dst_domain:
                raise ProvError(f"{relation}: unknown target {dst!r}")

    def to_prov_json(self) -> Dict[str, Any]:
        """Serialize to a PROV-JSON-style dictionary."""
        doc: Dict[str, Any] = {
            "agent": {k: dict(v) for k, v in self.agents.items()},
            "activity": {k: dict(v) for k, v in self.activities.items()},
            "entity": {k: dict(v) for k, v in self.entities.items()},
        }
        for relation in RELATION_TYPES:
            pairs = self.relations_of(relation)
            if pairs:
                doc[relation] = [
                    {"src": src, "dst": dst} for src, dst in pairs
                ]
        return doc

    def __len__(self) -> int:
        return len(self.agents) + len(self.activities) + len(self.entities)


def document_from_records(records: Iterable[Dict[str, Any]]) -> ProvDocument:
    """Rebuild a PROV-DM document from captured ProvLight records.

    Implements exactly the Table V mapping; unknown record kinds raise.
    """
    doc = ProvDocument()
    for record in records:
        kind = record.get("kind")
        wf = f"workflow:{record['workflow_id']}"
        if kind in ("workflow_begin", "workflow_end"):
            doc.agent(wf)
            continue
        if kind not in ("task_begin", "task_end"):
            raise ProvError(f"unknown record kind {kind!r}")
        doc.agent(wf)
        task = f"task:{record['task_id']}"
        if kind == "task_begin":
            doc.activity(task, start_time=record.get("time"), status=record.get("status"))
        else:
            doc.activity(task, end_time=record.get("time"), status=record.get("status"))
        doc.was_associated_with(task, wf)
        for dep in record.get("dependencies", ()):
            dep_task = f"task:{dep}"
            doc.activity(dep_task)
            doc.was_informed_by(task, dep_task)
        for item in record.get("data", ()):
            entity = f"data:{item['id']}"
            doc.entity(entity, attributes=dict(item.get("attributes", {})))
            doc.was_attributed_to(entity, wf)
            if kind == "task_begin":
                doc.used(task, entity)
            else:
                doc.was_generated_by(entity, task)
            for source in item.get("derivations", ()):
                src_entity = f"data:{source}"
                doc.entity(src_entity)
                doc.was_derived_from(entity, src_entity)
    return doc
