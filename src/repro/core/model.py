"""ProvLight capture model: ``Workflow``, ``Task``, ``Data``.

This is the user-facing instrumentation API from the paper's Listing 1::

    workflow = Workflow(1, client)
    yield from workflow.begin()
    task = Task(7, workflow, transformation_id=0, dependencies=prev)
    data_in = Data("in7", workflow.id, {"in": [...]})
    yield from task.begin([data_in])
    # ... the actual task work ...
    data_out = Data("out7", workflow.id, {"out": [...]}, derivations=["in7"])
    yield from task.end([data_out])
    yield from workflow.end()

The only deviation from the paper's synchronous listing is that capture
calls are generators (``yield from``), because inside the DES the library
must charge simulated CPU time.  The PROV-DM mapping of these classes is
the paper's Table V (see :mod:`repro.core.provdm`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "Workflow",
    "Task",
    "Data",
    "count_attributes",
    "count_attribute_values",
    "count_attributes_from_record",
]

Scalar = Union[None, bool, int, float, str, bytes]

_CONTAINER_TYPES = (list, tuple, dict)


def count_attribute_values(attributes: Dict[str, Any]) -> int:
    """Number of scalar values in one attribute mapping (Table I).

    The paper's "attributes per task" counts the values manipulated per
    task (e.g. ``{'in': [1]*100}`` is 100 attributes), so container
    values (list/tuple/dict) count element-wise and scalars count one.
    """
    total = 0
    for value in attributes.values():
        if isinstance(value, _CONTAINER_TYPES):
            total += len(value)
        else:
            total += 1
    return total


def count_attributes(data_items: Sequence[Any]) -> int:
    """Attribute count across data items (:class:`Data` objects or their
    ``to_record()`` dicts) — the one Table I implementation shared by
    every capture client and baseline."""
    total = 0
    for item in data_items:
        attributes = (
            item.attributes if isinstance(item, Data) else item.get("attributes")
        )
        if attributes:
            total += count_attribute_values(attributes)
    return total


def count_attributes_from_record(record: Dict[str, Any]) -> int:
    """Attribute count of a full capture record (its ``data`` items)."""
    return count_attributes(record.get("data", ()))


class Data:
    """A data derivation: input or output attributes of a task.

    PROV-DM Entity.  ``derivations`` links chained data
    (``wasDerivedFrom``); the workflow link is ``wasAttributedTo``.
    """

    __slots__ = ("id", "workflow_id", "attributes", "derivations")

    def __init__(
        self,
        data_id: Any,
        workflow_id: Any,
        attributes: Optional[Dict[str, Any]] = None,
        derivations: Iterable[Any] = (),
    ):
        self.id = data_id
        self.workflow_id = workflow_id
        self.attributes = dict(attributes or {})
        self.derivations = list(derivations)

    def to_record(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "workflow_id": self.workflow_id,
            "derivations": list(self.derivations),
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return f"Data({self.id!r}, wf={self.workflow_id!r}, {len(self.attributes)} attrs)"


class Workflow:
    """An application workflow.  PROV-DM Agent."""

    def __init__(self, workflow_id: Any, client):
        self.id = workflow_id
        self.client = client
        self.begun = False
        self.ended = False

    def begin(self):
        """Generator: announce the workflow start (never grouped)."""
        if self.begun:
            raise RuntimeError(f"workflow {self.id} already begun")
        self.begun = True
        record = {
            "kind": "workflow_begin",
            "workflow_id": self.id,
            "time": self.client.now,
        }
        yield from self.client.capture(record, groupable=False)

    def end(self, drain: bool = False):
        """Generator: flush grouped records and announce completion.

        With ``drain=True`` it additionally waits until every queued
        message finished its QoS handshake — useful in tests, not part of
        the paper's timed workflow path.
        """
        if not self.begun:
            raise RuntimeError(f"workflow {self.id} never begun")
        if self.ended:
            raise RuntimeError(f"workflow {self.id} already ended")
        self.ended = True
        record = {
            "kind": "workflow_end",
            "workflow_id": self.id,
            "time": self.client.now,
        }
        yield from self.client.capture(record, groupable=False)
        # flush *after* the final record so group-everything clients
        # (ProvLake) ship it too; ProvLight sends it directly either way.
        yield from self.client.flush_groups()
        if drain:
            yield from self.client.drain()

    def __repr__(self) -> str:
        return f"Workflow({self.id!r})"


class Task:
    """A processing step of a workflow.  PROV-DM Activity.

    ``dependencies`` (task ids) map to ``wasInformedBy``; input data map
    to ``used`` and outputs to ``wasGeneratedBy``.
    """

    def __init__(
        self,
        task_id: Any,
        workflow: Workflow,
        transformation_id: Any = None,
        dependencies: Iterable[Any] = (),
    ):
        self.id = task_id
        self.workflow = workflow
        self.transformation_id = transformation_id
        self.dependencies = list(dependencies)
        self.status = "created"
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def _base_record(self, kind: str, data: Sequence[Data]) -> Dict[str, Any]:
        return {
            "kind": kind,
            "workflow_id": self.workflow.id,
            "task_id": self.id,
            "transformation_id": self.transformation_id,
            "dependencies": list(self.dependencies),
            "time": self.workflow.client.now,
            "status": self.status,
            "data": [d.to_record() for d in data],
        }

    def begin(self, data: Sequence[Data] = ()):
        """Generator: capture task start with its input data (``used``).

        Begin records are never grouped so users can track started tasks
        at runtime (paper Section IV-C).
        """
        if self.status not in ("created",):
            raise RuntimeError(f"task {self.id} begin() in state {self.status}")
        self.status = "running"
        self.start_time = self.workflow.client.now
        record = self._base_record("task_begin", data)
        yield from self.workflow.client.capture(record, groupable=False)

    def end(self, data: Sequence[Data] = ()):
        """Generator: capture task completion with its outputs
        (``wasGeneratedBy``).  End records participate in grouping."""
        if self.status != "running":
            raise RuntimeError(f"task {self.id} end() in state {self.status}")
        self.status = "finished"
        self.end_time = self.workflow.client.now
        record = self._base_record("task_end", data)
        yield from self.workflow.client.capture(record, groupable=True)

    def __repr__(self) -> str:
        return f"Task({self.id!r}, wf={self.workflow.id!r}, {self.status})"
