"""The ProvLight capture client: the ``mqttsn`` transport adapter plus
the classic ``ProvLightClient`` entry point.

This is the paper's core contribution: a capture library whose critical
path (what the instrumented workflow waits on) is only

1. building the record (simplified model classes),
2. binary-encoding + compressing it (:mod:`repro.core.serialization`),
3. appending it to the outbound queue.

That shared critical path now lives in
:class:`repro.capture.CaptureClient`; this module contributes only the
protocol-specific part — :class:`MqttSnCaptureTransport`, a thin adapter
over :class:`~repro.mqttsn.MqttSnClient` driving the MQTT-SN QoS 2
exchange in the background so network latency, bandwidth and the broker
never delay the workflow (the design property behind Tables VII/VIII)
— and :class:`ProvLightClient`, the compatibility shim that constructs
the façade with this transport.

Costs are charged per :mod:`repro.calibration`; payload bytes are real
(actual codec + zlib output), so network numbers are emergent.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..calibration import MEMORY_FOOTPRINTS, PROVLIGHT_COSTS, MemoryFootprints, ProvLightCosts
from ..capture import CaptureClient, CaptureConfig, CaptureTransport, register_transport
from ..device import Device
from ..mqttsn import MqttSnClient
from ..net import Endpoint
# re-export: the Table I attribute-count semantics live in core.model now,
# but a long tail of callers imports the record-shaped helper from here
from .model import count_attributes_from_record  # noqa: F401

__all__ = ["ProvLightClient", "MqttSnCaptureTransport", "count_attributes_from_record"]

_client_ids = itertools.count(1)


class MqttSnCaptureTransport(CaptureTransport):
    """Capture over an asynchronous MQTT-SN publish (the paper's choice).

    ``send()`` is :meth:`~repro.mqttsn.MqttSnClient.publish_nowait`: the
    QoS machinery (PUBREC/PUBREL/PUBCOMP, retransmissions) runs in the
    MQTT-SN client's receive loop, off the workflow's critical path.
    """

    name = "mqttsn"
    blocking = False
    requires_setup = True  # the broker must assign a topic id first

    def __init__(self, device: Device, broker: Endpoint, topic: str,
                 config: CaptureConfig):
        self.mqtt = MqttSnClient(
            device.host,
            config.client_id or f"provlight-{next(_client_ids)}",
            broker,
        )
        self.qos = config.qos
        self.topic_id: Optional[int] = None

    def connect(self):
        yield from self.mqtt.connect()

    def register(self, topic: str):
        self.topic_id = yield from self.mqtt.register(topic)
        return self.topic_id

    def send(self, payload: bytes):
        return self.mqtt.publish_nowait(self.topic_id, payload, qos=self.qos)

    def disconnect(self) -> None:
        self.mqtt.disconnect()


register_transport("mqttsn", MqttSnCaptureTransport)


class ProvLightClient(CaptureClient):
    """Capture client bound to one device, publishing to one topic.

    Compatibility shim over :class:`~repro.capture.CaptureClient` with
    the ``mqttsn`` transport: existing instrumentation, the paper-table
    harness and the examples run unchanged, while new code should prefer
    :func:`repro.capture.create_client`.
    """

    def __init__(
        self,
        device: Device,
        broker: Endpoint,
        topic: str,
        group_size: int = 0,
        compress: bool = True,
        qos: int = 2,
        costs: ProvLightCosts = PROVLIGHT_COSTS,
        footprints: MemoryFootprints = MEMORY_FOOTPRINTS,
        client_id: Optional[str] = None,
        cipher=None,
    ):
        config = CaptureConfig(
            transport="mqttsn",
            group_size=group_size,
            compress=compress,
            qos=qos,
            cipher=cipher,
            client_id=client_id,
            costs=costs,
            footprints=footprints,
        )
        super().__init__(device, broker, topic, config)

    @property
    def mqtt(self) -> MqttSnClient:
        """The underlying MQTT-SN client (tests tune its retry knobs)."""
        return self.transport.mqtt

    @property
    def topic_id(self) -> Optional[int]:
        return self.transport.topic_id

    def __repr__(self) -> str:
        return f"<ProvLightClient {self.topic} on {self.device.name}>"
