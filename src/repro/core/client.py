"""The ProvLight capture client.

This is the paper's core contribution: a capture library whose critical
path (what the instrumented workflow waits on) is only

1. building the record (simplified model classes),
2. binary-encoding + compressing it (:mod:`repro.core.serialization`),
3. appending it to the outbound queue.

A background sender drives the MQTT-SN QoS 2 exchange, so network
latency, bandwidth and the broker never delay the workflow — the design
property behind Tables VII/VIII (flat overhead across bandwidths) versus
the baselines' blocking HTTP (Tables II/III).

Costs are charged per :mod:`repro.calibration`; payload bytes are real
(actual codec + zlib output), so network numbers are emergent.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..calibration import MEMORY_FOOTPRINTS, PROVLIGHT_COSTS, MemoryFootprints, ProvLightCosts
from ..device import Device
from ..mqttsn import MqttSnClient
from ..net import Endpoint
from ..simkernel import Counter, Store
from .grouping import GroupBuffer
from .model import count_attributes
from .serialization import encode_payload

__all__ = ["ProvLightClient"]

_client_ids = itertools.count(1)


class ProvLightClient:
    """Capture client bound to one device, publishing to one topic."""

    def __init__(
        self,
        device: Device,
        broker: Endpoint,
        topic: str,
        group_size: int = 0,
        compress: bool = True,
        qos: int = 2,
        costs: ProvLightCosts = PROVLIGHT_COSTS,
        footprints: MemoryFootprints = MEMORY_FOOTPRINTS,
        client_id: Optional[str] = None,
        cipher=None,
    ):
        if device.host is None:
            raise RuntimeError(
                f"device {device.name} is not attached to a network host"
            )
        self.device = device
        self.env = device.env
        self.topic = topic
        self.qos = qos
        self.compress = compress
        self.cipher = cipher
        self.costs = costs
        self.footprints = footprints
        self.group_buffer = GroupBuffer(group_size)
        self.mqtt = MqttSnClient(
            device.host,
            client_id or f"provlight-{next(_client_ids)}",
            broker,
        )
        self.topic_id: Optional[int] = None
        self._queue: Store = Store(self.env)
        self._outstanding = 0
        self._drain_waiters: List = []
        self.messages_sent = Counter("messages")
        self.payload_bytes = Counter("payload-bytes")
        self.records_captured = Counter("records")
        device.memory.allocate(footprints.provlight_lib_bytes, tag="capture-static")
        self.env.process(self._sender_loop(), name=f"provlight-sender-{self.topic}")

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Simulated clock (used by model classes for record timestamps)."""
        return self.env.now

    def setup(self):
        """Generator: connect to the broker and register the topic.

        Idempotent: a client that is already set up returns immediately,
        so deployment frameworks can hand out ready clients and workloads
        can still call ``setup()`` unconditionally.
        """
        if self.topic_id is not None:
            return self
        yield from self.mqtt.connect()
        self.topic_id = yield from self.mqtt.register(self.topic)
        return self

    def capture(self, record: Dict[str, Any], groupable: bool = True):
        """Generator: capture one record (called by the model classes).

        Charges calibrated inline costs, produces the real payload bytes
        and hands them to the background sender.  Returns as soon as the
        record is queued — this is the *entire* workflow-visible cost.
        """
        if self.topic_id is None:
            raise RuntimeError("capture before setup()")
        self.records_captured.record()
        n_attrs = count_attributes_from_record(record)
        costs = self.costs
        cpu_run = self.device.cpu.run
        if groupable and self.group_buffer.enabled:
            yield from cpu_run(
                compute_s=costs.buffered_fixed_compute_s
                + costs.buffered_per_attr_compute_s * n_attrs,
                io_wait_s=costs.buffered_io_s,
                tag="capture",
            )
            group = self.group_buffer.add(record)
            if group is not None:
                yield from self._flush_group(group)
        else:
            yield from cpu_run(
                compute_s=costs.inline_fixed_compute_s
                + costs.inline_per_attr_compute_s * n_attrs,
                io_wait_s=costs.inline_io_s,
                tag="capture",
            )
            self._enqueue(
                encode_payload(record, compress=self.compress, cipher=self.cipher)
            )

    def flush_groups(self):
        """Generator: force out a partial group (workflow end)."""
        group = self.group_buffer.flush()
        if group is not None:
            yield from self._flush_group(group)
        return None
        yield  # pragma: no cover - make this a generator even when empty

    def drain(self):
        """Generator: wait until every queued message completed its QoS
        handshake.  Diagnostic/teardown helper; the paper's overhead
        metric intentionally does not include this wait."""
        if self._outstanding == 0 and not self._queue.items:
            return
        event = self.env.event()
        self._drain_waiters.append(event)
        yield event

    def close(self) -> None:
        """Disconnect and release the library's static memory."""
        self.mqtt.disconnect()
        self.device.memory.free(
            self.footprints.provlight_lib_bytes, tag="capture-static"
        )

    # ------------------------------------------------------------- internals
    def _flush_group(self, group: List[Dict[str, Any]]):
        costs = self.costs
        yield from self.device.cpu.run(
            compute_s=costs.group_flush_fixed_compute_s
            + costs.group_flush_per_record_compute_s * len(group),
            io_wait_s=costs.group_flush_io_s,
            tag="capture",
        )
        self._enqueue(
            encode_payload(group, compress=self.compress, cipher=self.cipher)
        )

    def _enqueue(self, payload: bytes) -> None:
        nbytes = len(payload) + self.footprints.per_message_overhead_bytes
        self.device.memory.allocate(nbytes, tag="capture-buffers")
        self._outstanding += 1
        self._queue.put((payload, nbytes))

    def _sender_loop(self):
        while True:
            payload, nbytes = yield self._queue.get()
            done = self.mqtt.publish_nowait(self.topic_id, payload, qos=self.qos)
            # QoS bookkeeping (PUBREC/PUBREL/PUBCOMP handling) happens on a
            # background thread: busy CPU, but off the workflow's path.
            self.device.cpu.run_async(
                io_busy_s=self.costs.async_per_message_io_s, tag="capture"
            )
            try:
                yield done
            except Exception:
                # exactly-once exchange exhausted its retries; the record
                # is lost but capture must never crash the workflow.
                pass
            self.messages_sent.record()
            self.payload_bytes.record(len(payload))
            self.device.memory.free(nbytes, tag="capture-buffers")
            self._outstanding -= 1
            if self._outstanding == 0 and not self._queue.items:
                waiters, self._drain_waiters = self._drain_waiters, []
                for event in waiters:
                    event.succeed()

    def __repr__(self) -> str:
        return f"<ProvLightClient {self.topic} on {self.device.name}>"


_CONTAINER_TYPES = (list, tuple, dict)


def count_attributes_from_record(record: Dict[str, Any]) -> int:
    """Attribute count of a record (see :func:`~repro.core.model.count_attributes`)."""
    total = 0
    for item in record.get("data", ()):
        attributes = item.get("attributes")
        if not attributes:
            continue
        for value in attributes.values():
            if isinstance(value, _CONTAINER_TYPES):
                total += len(value)
            else:
                total += 1
    return total
