"""ProvLight: the paper's core contribution.

User-facing capture model (``Workflow``/``Task``/``Data`` per PROV-DM),
binary serialization with compression, optional grouping of ended-task
records, an asynchronous MQTT-SN capture client, and the server side
(broker + a sharded pool of provenance translators with pluggable
backends).
"""

from .client import MqttSnCaptureTransport, ProvLightClient
from .grouping import GroupBuffer
from .model import (
    Data,
    Task,
    Workflow,
    count_attribute_values,
    count_attributes,
    count_attributes_from_record,
)
from .provdm import ProvDocument, ProvError, document_from_records
from .resilience import (
    BackendError,
    BackendTimeout,
    CircuitBreaker,
    RetryPolicy,
    RetryableBackendError,
)
from .security import AuthenticationError, PayloadCipher, derive_key
from .serialization import (
    CodecError,
    decode_payload,
    decode_value,
    encode_payload,
    encode_value,
)
from .server import (
    DEFAULT_BROKER_SHARDS,
    DEFAULT_TRANSLATOR_WORKERS,
    CallableBackend,
    HttpBackend,
    ProvLightServer,
    TranslatorPool,
)
from .translator import (
    TranslationError,
    Translator,
    records_from_payload,
    to_dfanalyzer,
    to_prov_json,
    to_provlake,
)

__all__ = [
    "Workflow",
    "Task",
    "Data",
    "count_attributes",
    "count_attribute_values",
    "count_attributes_from_record",
    "ProvLightClient",
    "MqttSnCaptureTransport",
    "ProvLightServer",
    "TranslatorPool",
    "DEFAULT_TRANSLATOR_WORKERS",
    "DEFAULT_BROKER_SHARDS",
    "CallableBackend",
    "HttpBackend",
    "BackendError",
    "RetryableBackendError",
    "BackendTimeout",
    "RetryPolicy",
    "CircuitBreaker",
    "GroupBuffer",
    "ProvDocument",
    "ProvError",
    "document_from_records",
    "Translator",
    "TranslationError",
    "records_from_payload",
    "to_dfanalyzer",
    "to_prov_json",
    "to_provlake",
    "encode_value",
    "decode_value",
    "encode_payload",
    "decode_payload",
    "CodecError",
    "PayloadCipher",
    "AuthenticationError",
    "derive_key",
]
