"""Backend resilience primitives: retry classification + circuit breaker.

The translator plane's backend is a remote provenance system; its
failures come in two flavours.  *Transient* faults (connection drops,
timeouts, 5xx responses) deserve bounded retries with backoff — the
request was fine, the moment was not.  *Fatal* faults (4xx rejections,
serialization errors) must not be retried: the same bytes will fail the
same way and every retry just burns a pool worker.

The :class:`CircuitBreaker` sits above the retry policy and protects the
whole worker pool from a *down* backend: after ``failure_threshold``
consecutive transient failures the breaker opens and ingest calls are
rejected immediately (the caller spills instead of blocking a worker on
a doomed request); after ``reset_timeout_s`` one half-open probe is let
through, and its outcome closes or re-opens the circuit.  This is the
classic closed → open → half-open automaton, driven entirely by the
simulation clock.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

from ..simkernel import Counter, Environment

__all__ = [
    "BackendError",
    "RetryableBackendError",
    "BackendTimeout",
    "RetryPolicy",
    "CircuitBreaker",
]


class BackendError(RuntimeError):
    """The backend rejected an ingest for a non-transient reason."""


class RetryableBackendError(BackendError):
    """A transient backend failure worth retrying (5xx, connection loss)."""


class BackendTimeout(RetryableBackendError):
    """The backend did not answer within the configured timeout."""


class RetryPolicy:
    """Bounded exponential backoff with deterministic per-caller jitter.

    ``classify`` decides whether an exception is transient; network
    errors (``ConnectionError`` covers :class:`~repro.http.client.
    HttpRequestError`) and :class:`RetryableBackendError` are, anything
    else is fatal.  The jitter RNG is seeded from ``seed_key`` so a
    fleet of workers retrying after the same outage de-synchronises the
    same way on every run.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_s: float = 0.05,
        factor: float = 2.0,
        max_s: float = 2.0,
        jitter: float = 0.1,
        seed_key: str = "backend",
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_s = base_s
        self.factor = factor
        self.max_s = max_s
        self.jitter = jitter
        self._rng = random.Random(zlib.crc32(seed_key.encode("utf-8")))

    def classify(self, exc: BaseException) -> bool:
        """True when ``exc`` is transient (worth a retry)."""
        return isinstance(exc, (RetryableBackendError, ConnectionError))

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = min(self.max_s, self.base_s * (self.factor ** attempt))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(delay, 1e-9)


class CircuitBreaker:
    """Closed → open → half-open breaker on the simulation clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        env: Environment,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be > 0")
        self.env = env
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self.opens = Counter("breaker-opens")

    @property
    def state(self) -> str:
        """Current automaton state, accounting for elapsed open time."""
        if self._state == self.OPEN and self.time_until_probe() <= 0:
            return self.HALF_OPEN
        return self._state

    def time_until_probe(self) -> float:
        """Seconds until an open breaker admits its half-open probe."""
        if self._state != self.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.reset_timeout_s - self.env.now)

    def allow(self) -> bool:
        """May a request be attempted right now?

        Closed: always.  Open: only once ``reset_timeout_s`` has elapsed,
        and then exactly one caller gets through as the half-open probe
        (the state flips to half-open so concurrent callers keep being
        rejected until the probe resolves).
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and self._state == self.OPEN:
            # admit exactly one probe
            self._state = self.HALF_OPEN
            return True
        return False

    def record_success(self) -> None:
        """A request succeeded: close the circuit."""
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """A transient request failure: count towards opening."""
        if self._state == self.HALF_OPEN:
            # the probe failed: straight back to open, restart the clock
            self._trip()
            return
        self._failures += 1
        if self._state == self.CLOSED and self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._failures = 0
        self._opened_at = self.env.now
        self.opens.record()

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} opens={self.opens.count}>"
