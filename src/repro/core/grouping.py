"""Message grouping for the ProvLight client.

Paper Section IV-C: the client may "group data just from ended tasks, so
users may still track at workflow runtime the tasks that have already
started".  Begin records therefore bypass this buffer; end records are
held until ``group_size`` of them accumulate (or the workflow flushes on
``end()``), then ship as one payload.

Grouping cuts per-message costs (fewer QoS 2 exchanges, shared framing,
cross-record compression) at the price of delayed visibility for
*finished* tasks only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["GroupBuffer"]


class GroupBuffer:
    """Accumulates records and releases them in groups."""

    def __init__(self, group_size: int):
        if group_size < 0:
            raise ValueError("group_size must be >= 0")
        self.group_size = group_size
        self._records: List[Dict[str, Any]] = []
        self.groups_flushed = 0
        self.records_buffered = 0

    @property
    def enabled(self) -> bool:
        """Grouping is off when ``group_size`` is 0 (paper's default)."""
        return self.group_size > 0

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: Dict[str, Any]) -> Optional[List[Dict[str, Any]]]:
        """Buffer ``record``; returns a full group when one is ready."""
        if not self.enabled:
            return [record]
        self._records.append(record)
        self.records_buffered += 1
        if len(self._records) >= self.group_size:
            return self.flush()
        return None

    def flush(self) -> Optional[List[Dict[str, Any]]]:
        """Release whatever is buffered (e.g. at workflow end)."""
        if not self._records:
            return None
        group, self._records = self._records, []
        self.groups_flushed += 1
        return group
