"""The ProvLight server: sharded MQTT-SN broker plane + sharded translators.

Mirrors the paper's Fig. 3/Fig. 5 deployment: an RSMB-style broker
receives the devices' publishes; translators subscribe, decode/decompress
the payloads, translate them (default: to the DfAnalyzer model) and hand
them to a backend — either an in-process store or an HTTP endpoint of a
provenance system.

Two layers of the server shard by consistent hashing (the same ring,
:class:`~repro.hashring.ConsistentHashRing`):

* the **broker plane** is a :class:`~repro.mqttsn.BrokerCluster` of
  ``broker_shards`` broker instances behind one endpoint (client ids
  shard onto brokers; ``broker_shards=1``, the default, is
  wire-identical to a single standalone broker);
* the **translator plane** is a fixed-size :class:`TranslatorPool`:
  topics shard across K workers, each owning one MQTT-SN subscriber
  client and draining its inbox in batches.  A thousand device topics
  therefore cost K subscriber clients, not a thousand.
  :meth:`ProvLightServer.add_translator` is kept as the compatibility
  entry point: it attaches one topic filter to the pool.

Backends follow a uniform generator protocol: ``ingest(translated)``
returns an iterable of simulation events.  Synchronous backends deliver
inline and return no events; network backends return a generator that
yields the I/O events of the request.  Backends may additionally expose
``ingest_batch(batch)`` — same contract, one call per *drained worker
batch* — which lets a network backend pipeline the whole batch into one
bulk request instead of one POST per translated group; workers prefer it
when present.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, List, Sequence, Tuple

from ..calibration import SERVER_COSTS, ServerCosts
from ..capture.envelope import ReplayDeduper, unwrap_payload
from ..hashring import ConsistentHashRing
from ..http import HttpSession
from ..mqttsn import BrokerCluster, DEFAULT_BROKER_PORT, MqttSnClient
from ..net import Endpoint, Host
from ..simkernel import Counter, Store
from .translator import Translator

__all__ = [
    "ProvLightServer",
    "TranslatorPool",
    "CallableBackend",
    "HttpBackend",
    "DEFAULT_TRANSLATOR_WORKERS",
    "DEFAULT_BROKER_SHARDS",
]

#: paper Table IX reproduces with 8 workers serving 64 device topics
DEFAULT_TRANSLATOR_WORKERS = 8

#: single broker shard by default — identical to the pre-cluster server
DEFAULT_BROKER_SHARDS = 1


class CallableBackend:
    """Adapter delivering translated records to an in-process callable."""

    def __init__(self, fn: Callable[[Any], None]):
        self.fn = fn
        self.delivered = Counter("backend-delivered")

    def ingest(self, translated: Any) -> Iterable:
        """Deliver inline; no simulation events to wait on."""
        self.fn(translated)
        self.delivered.record()
        return ()

    def ingest_batch(self, batch: Sequence[Any]) -> Iterable:
        """Deliver each group inline, in order — an in-process callable
        gains nothing from bulk framing, so the single-group behaviour
        is preserved group by group."""
        for translated in batch:
            self.ingest(translated)
        return ()


class HttpBackend:
    """Adapter POSTing translated records to a provenance system's API."""

    def __init__(self, host: Host, endpoint: Endpoint, path: str = "/pde"):
        self.session = HttpSession(host)
        self.endpoint = endpoint
        self.path = path
        self.delivered = Counter("backend-delivered")
        self.requests = Counter("backend-requests")

    def ingest(self, translated: Any):
        # compact separators: backend POST bodies are real wire bytes in
        # the simulation, so whitespace would inflate every ingest
        body = json.dumps(translated, default=str, separators=(",", ":")).encode()
        response = yield from self.session.post(self.endpoint, self.path, body)
        if not response.ok:
            raise RuntimeError(f"backend rejected ingest: {response.status}")
        self.delivered.record()
        self.requests.record(len(body))

    def ingest_batch(self, batch: Sequence[Any]):
        """Pipelined ingest: one bulk POST (a JSON array body) covers the
        whole drained batch.  A batch of one keeps the bare-object body,
        so light traffic stays wire-identical to the per-group path."""
        if len(batch) == 1:
            yield from self.ingest(batch[0])
            return
        body = json.dumps(list(batch), default=str, separators=(",", ":")).encode()
        response = yield from self.session.post(self.endpoint, self.path, body)
        if not response.ok:
            raise RuntimeError(f"backend rejected bulk ingest: {response.status}")
        for _ in batch:  # delivered.count stays group-denominated
            self.delivered.record()
        self.requests.record(len(body))


class _TranslatorWorker:
    """One pool worker: a subscriber client plus a batched work loop."""

    def __init__(self, server: "ProvLightServer", index: int, max_batch: int):
        self.server = server
        self.index = index
        self.max_batch = max(1, max_batch)
        self.env = server.env
        self.client = MqttSnClient(
            server.host,
            f"translator-{index}",
            (server.host.name, server.port),
        )
        self.topic_filters: List[str] = []
        self._inbox: Store = Store(self.env)
        self._connected = False
        self._connect_gate = None
        self.env.process(self._work_loop(), name=f"translator-{index}")

    def attach(self, topic_filter: str):
        """Generator: subscribe this worker to ``topic_filter``."""
        yield from self._ensure_connected()
        yield from self.client.subscribe(
            topic_filter, lambda topic, payload: self._inbox.put((topic, payload))
        )
        self.topic_filters.append(topic_filter)
        return self

    def _ensure_connected(self):
        """Generator: connect the subscriber client exactly once, even when
        several attachments race on a cold worker.

        A failed connect is propagated to every waiter and the gate is
        reset first, so a later attach can retry instead of blocking on
        an event that can never trigger."""
        while not self._connected:
            if self._connect_gate is not None:
                yield self._connect_gate
                continue  # re-check: the connecting attach may have failed
            gate = self._connect_gate = self.env.event()
            try:
                yield from self.client.connect()
            except BaseException as exc:
                self._connect_gate = None
                gate.defused = True  # waiters may not exist; don't crash the sim
                gate.fail(exc)
                raise
            self._connected = True
            gate.succeed()

    @property
    def queued(self) -> int:
        """Payloads waiting in this worker's inbox."""
        return len(self._inbox.items)

    def _work_loop(self):
        server = self.server
        while True:
            batch = [(yield self._inbox.get())]
            if self.max_batch > 1:
                batch.extend(self._inbox.drain_pending(self.max_batch - 1))
            costs = server.costs
            work = 0.0
            translated_batch: List[Tuple[list, Any]] = []
            for _topic, payload in batch:
                # durable clients wrap payloads in a (client_id, seq)
                # envelope: peek it *before* paying any translate cost
                # and drop replays already ingested — this is what turns
                # the client's at-least-once delivery into exactly-once
                # backend ingestion
                try:
                    envelope = unwrap_payload(payload)
                except Exception:
                    server.translate_errors.record()
                    continue
                if envelope is not None:
                    client_id, seq, payload = envelope
                    if server.deduper.is_duplicate(client_id, seq):
                        server.duplicates_dropped.record()
                        continue
                try:
                    records, translated = server.translator.translate_payload(payload)
                except Exception:
                    server.translate_errors.record()
                    continue
                work += costs.translate_per_message_s
                if len(records) > 1:
                    work += costs.translate_group_fixed_s
                translated_batch.append((records, translated))
            if not translated_batch:
                continue
            # one CPU grant covers the whole drained batch: same simulated
            # work as per-message servicing, far fewer scheduler wakeups
            device = server.host.device
            if device is not None:
                yield from device.cpu.run(io_busy_s=work, tag="translator")
            else:
                yield self.env.timeout(work)
            # pipelined ingest: hand the backend the whole drained batch
            # (one bulk request for network backends) when it supports
            # it; otherwise fall back to one ingest per translated group
            backend = server.backend
            ingest_batch = getattr(backend, "ingest_batch", None)
            if ingest_batch is not None:
                yield from ingest_batch([t for _, t in translated_batch])
            else:
                for _records, translated in translated_batch:
                    yield from backend.ingest(translated)
            for records, _translated in translated_batch:
                server.records_ingested.record(len(records))

    def __repr__(self) -> str:
        return (
            f"<TranslatorWorker {self.index} filters={len(self.topic_filters)} "
            f"queued={self.queued}>"
        )


class TranslatorPool:
    """Fixed-size worker pool sharding topics by consistent hashing.

    The hash ring carries ``replicas`` virtual points per worker, so
    adding topics spreads evenly and the worker serving a topic is a pure
    function of the topic name — no rebalancing state, no registry
    side effects, and the same layout regardless of the order topics
    are attached in (broker topic ids are sequential, so hashing on
    them would be order-dependent).
    """

    def __init__(self, server: "ProvLightServer", size: int, *,
                 replicas: int = 32, max_batch: int = 32):
        if size <= 0:
            raise ValueError("translator pool needs at least one worker")
        self.server = server
        self.workers = [
            _TranslatorWorker(server, i + 1, max_batch) for i in range(size)
        ]
        self._ring = ConsistentHashRing(size, replicas=replicas, salt="worker")

    def __len__(self) -> int:
        return len(self.workers)

    def worker_for(self, topic_filter: str) -> _TranslatorWorker:
        """The worker a topic shards to (stable, side-effect free)."""
        return self.workers[self._ring.node_for(topic_filter)]

    def attach(self, topic_filter: str):
        """Generator: route ``topic_filter`` to its shard and subscribe."""
        worker = self.worker_for(topic_filter)
        yield from worker.attach(topic_filter)
        return worker

    @property
    def queued(self) -> int:
        """Total payloads waiting across all worker inboxes."""
        return sum(worker.queued for worker in self.workers)

    def __repr__(self) -> str:
        return f"<TranslatorPool workers={len(self.workers)} queued={self.queued}>"


class ProvLightServer:
    """Sharded broker plane + sharded translator pool on one (cloud) host.

    ``broker_shards`` sizes the :class:`~repro.mqttsn.BrokerCluster`
    behind :attr:`endpoint`; the default of 1 is wire-identical to the
    pre-cluster single broker.  :attr:`broker` exposes the cluster,
    which delegates the standalone broker's surface (``sessions``,
    ``topics``, ``subscriptions``, retry knobs, counters) at any shard
    count.
    """

    def __init__(
        self,
        host: Host,
        backend,
        port: int = DEFAULT_BROKER_PORT,
        target: str = "dfanalyzer",
        costs: ServerCosts = SERVER_COSTS,
        cipher=None,
        workers: int = DEFAULT_TRANSLATOR_WORKERS,
        broker_shards: int = DEFAULT_BROKER_SHARDS,
    ):
        self.host = host
        self.env = host.env
        self.port = port
        self.backend = backend
        self.costs = costs
        self.translator = Translator(target, cipher=cipher)
        self.broker = BrokerCluster(
            host, port,
            shards=broker_shards,
            service_time_s=costs.broker_per_packet_s,
            batch_fixed_s=costs.broker_batch_fixed_s,
            dispatch_fixed_s=costs.broker_dispatch_fixed_s,
        )
        self.pool = TranslatorPool(self, workers)
        #: one entry per attached topic filter (compatibility with the
        #: seed's translator-per-topic bookkeeping): the worker shard
        #: each ``add_translator`` call landed on.
        self.translators: List[_TranslatorWorker] = []
        self.records_ingested = Counter("records-ingested")
        self.translate_errors = Counter("translate-errors")
        #: replay dedup shared by every pool worker — a client publishes
        #: to one topic, so all its payloads land on one worker, but the
        #: index is server-wide so re-sharding can never unsee a seq
        self.deduper = ReplayDeduper()
        self.duplicates_dropped = Counter("duplicates-dropped")

    def add_translator(self, topic_filter: str):
        """Generator: attach ``topic_filter`` to the translator pool.

        Compatibility shim for the paper's one-translator-per-topic
        deployment scripts: call once per device topic, exactly as the
        scalability experiment does (translator-1..64).  Topics shard
        onto the pool's fixed workers instead of spawning new processes.
        """
        worker = yield from self.pool.attach(topic_filter)
        self.translators.append(worker)
        return worker

    @property
    def endpoint(self) -> Endpoint:
        """Where clients should point their broker connection."""
        return (self.host.name, self.port)

    def __repr__(self) -> str:
        return (
            f"<ProvLightServer {self.host.name}:{self.port} "
            f"workers={len(self.pool)} topics={len(self.translators)}>"
        )
