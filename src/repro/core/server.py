"""The ProvLight server: sharded MQTT-SN broker plane + sharded translators.

Mirrors the paper's Fig. 3/Fig. 5 deployment: an RSMB-style broker
receives the devices' publishes; translators subscribe, decode/decompress
the payloads, translate them (default: to the DfAnalyzer model) and hand
them to a backend — either an in-process store or an HTTP endpoint of a
provenance system.

Two layers of the server shard by consistent hashing (the same ring,
:class:`~repro.hashring.ConsistentHashRing`):

* the **broker plane** is a :class:`~repro.mqttsn.BrokerCluster` of
  ``broker_shards`` broker instances behind one endpoint (client ids
  shard onto brokers; ``broker_shards=1``, the default, is
  wire-identical to a single standalone broker);
* the **translator plane** is a :class:`TranslatorPool`: topics shard
  across K workers, each owning one MQTT-SN subscriber client and
  draining its inbox in batches.  A thousand device topics therefore
  cost K subscriber clients, not a thousand.
  :meth:`ProvLightServer.add_translator` is kept as the compatibility
  entry point: it attaches one topic filter to the pool.  The pool is
  **elastic** when ``min_workers < max_workers``: a
  :class:`PoolAutoscaler` watches sustained inbox depth and grows or
  shrinks the worker count, re-homing each moved topic range through
  the ring's ~1/K remap with an exactly-once, order-preserving
  hold-buffer handover (see :meth:`TranslatorPool._migrate`).

Backends follow a uniform generator protocol: ``ingest(translated)``
returns an iterable of simulation events.  Synchronous backends deliver
inline and return no events; network backends return a generator that
yields the I/O events of the request.  Backends may additionally expose
``ingest_batch(batch)`` — same contract, one call per *drained worker
batch* — which lets a network backend pipeline the whole batch into one
bulk request instead of one POST per translated group; workers prefer it
when present.
"""

from __future__ import annotations

import json
import random
import zlib
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..calibration import SERVER_COSTS, ServerCosts
from ..capture.envelope import ReplayDeduper, unwrap_payload
from ..hashring import ConsistentHashRing
from ..http import HttpSession
from ..mqttsn import BrokerCluster, DEFAULT_BROKER_PORT, MqttSnClient
from ..mqttsn.topics import topic_matches
from ..net import Endpoint, Host
from ..simkernel import Counter, Store
from .resilience import (
    BackendError,
    BackendTimeout,
    CircuitBreaker,
    RetryPolicy,
    RetryableBackendError,
)
from .translator import Translator

__all__ = [
    "ProvLightServer",
    "TranslatorPool",
    "PoolAutoscaler",
    "CallableBackend",
    "HttpBackend",
    "DEFAULT_TRANSLATOR_WORKERS",
    "DEFAULT_BROKER_SHARDS",
]

#: paper Table IX reproduces with 8 workers serving 64 device topics
DEFAULT_TRANSLATOR_WORKERS = 8

#: single broker shard by default — identical to the pre-cluster server
DEFAULT_BROKER_SHARDS = 1


class CallableBackend:
    """Adapter delivering translated records to an in-process callable."""

    def __init__(self, fn: Callable[[Any], None]):
        self.fn = fn
        self.delivered = Counter("backend-delivered")

    def ingest(self, translated: Any) -> Iterable:
        """Deliver inline; no simulation events to wait on."""
        self.fn(translated)
        self.delivered.record()
        return ()

    def ingest_batch(self, batch: Sequence[Any]) -> Iterable:
        """Deliver each group inline, in order — an in-process callable
        gains nothing from bulk framing, so the single-group behaviour
        is preserved group by group."""
        for translated in batch:
            self.ingest(translated)
        return ()


class HttpBackend:
    """Adapter POSTing translated records to a provenance system's API.

    Failures flow through a :class:`~repro.core.resilience.RetryPolicy`
    (transient faults — connection loss, timeouts, 5xx — are retried
    with backoff; 4xx rejections raise :class:`BackendError` unretried)
    and a :class:`~repro.core.resilience.CircuitBreaker`.  While the
    breaker is open, ingest calls *spill* into a bounded in-memory queue
    instead of blocking a pool worker on a doomed request; a background
    drain delivers the spill once the backend recovers.  When the spill
    bound is hit, the oldest entries are shed (dropped, counted in
    :attr:`shed`) — under a long outage the backend degrades to keeping
    the freshest window rather than stalling the whole translator plane.

    ``timeout_s`` bounds each request on the simulation clock; a timed
    out request abandons the in-flight exchange, poisons the pooled
    connection (a late response must not be handed to the next request)
    and surfaces as a retryable :class:`BackendTimeout`.
    """

    def __init__(
        self,
        host: Host,
        endpoint: Endpoint,
        path: str = "/pde",
        timeout_s: Optional[float] = 10.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        spill_limit: int = 512,
        drain_max_probes: int = 25,
    ):
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be > 0 (or None to disable)")
        if spill_limit < 1:
            raise ValueError("spill_limit must be >= 1")
        self.session = HttpSession(host)
        self.env = host.env
        self.endpoint = endpoint
        self.path = path
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(host.env)
        )
        self.spill_limit = spill_limit
        self.drain_max_probes = drain_max_probes
        self.delivered = Counter("backend-delivered")
        self.requests = Counter("backend-requests")
        self.retries = Counter("backend-retries")
        self.spilled = Counter("backend-spilled")
        self.spill_drained = Counter("backend-spill-drained")
        self.shed = Counter("backend-shed")
        self._spill: deque = deque()
        self._drainer = None

    @property
    def pending_spill(self) -> int:
        """Translated groups parked in the spill queue."""
        return sum(groups for _, groups in self._spill)

    def ingest(self, translated: Any):
        # compact separators: backend POST bodies are real wire bytes in
        # the simulation, so whitespace would inflate every ingest
        body = json.dumps(translated, default=str, separators=(",", ":")).encode()
        yield from self._submit(body, 1)

    def ingest_batch(self, batch: Sequence[Any]):
        """Pipelined ingest: one bulk POST (a JSON array body) covers the
        whole drained batch.  A batch of one keeps the bare-object body,
        so light traffic stays wire-identical to the per-group path."""
        if len(batch) == 1:
            yield from self.ingest(batch[0])
            return
        body = json.dumps(list(batch), default=str, separators=(",", ":")).encode()
        yield from self._submit(body, len(batch))

    # ------------------------------------------------------------ internals
    def _post(self, body: bytes):
        """Generator: one POST, bounded by ``timeout_s`` on the sim clock."""
        if self.timeout_s is None:
            response = yield from self.session.post(self.endpoint, self.path, body)
            return response
        request = self.env.process(
            self.session.post(self.endpoint, self.path, body),
            name="backend-post",
        )
        timeout = self.env.timeout(self.timeout_s)
        yield self.env.any_of((request, timeout))
        if request.triggered:
            return request.value
        # Timed out: abandon the exchange.  The request process is still
        # parked inside the response read — defuse before interrupting so
        # its failure cannot crash the simulation — and the pooled
        # connection now carries a half-finished exchange, so poison it.
        request.defused = True
        request.interrupt("backend timeout")
        self.session.invalidate(self.endpoint)
        raise BackendTimeout(
            f"backend {self.endpoint} did not answer within {self.timeout_s}s"
        )

    def _submit(self, body: bytes, groups: int):
        """Generator: deliver ``body`` through retry + breaker, else spill."""
        if not self.breaker.allow():
            self._spill_body(body, groups)
            return
        attempt = 0
        while True:
            try:
                response = yield from self._post(body)
                if not response.ok:
                    if 500 <= response.status < 600:
                        raise RetryableBackendError(
                            f"backend unavailable: {response.status}"
                        )
                    raise BackendError(
                        f"backend rejected ingest: {response.status}"
                    )
            except BaseException as exc:
                if not self.retry.classify(exc):
                    raise
                self.breaker.record_failure()
                self.retries.record()
                attempt += 1
                if (
                    attempt >= self.retry.max_attempts
                    or self.breaker.state != CircuitBreaker.CLOSED
                ):
                    self._spill_body(body, groups)
                    return
                yield self.env.timeout(self.retry.delay(attempt - 1))
                continue
            self.breaker.record_success()
            for _ in range(groups):
                self.delivered.record()
            self.requests.record(len(body))
            if self._spill:
                self._ensure_drainer()
            return

    def _spill_body(self, body: bytes, groups: int) -> None:
        while len(self._spill) >= self.spill_limit:
            _, shed_groups = self._spill.popleft()  # load shedding: oldest first
            self.shed.record(shed_groups)
        self._spill.append((body, groups))
        self.spilled.record(groups)
        self._ensure_drainer()

    def _ensure_drainer(self) -> None:
        if self._drainer is None or not self._drainer.is_alive:
            self._drainer = self.env.process(
                self._drain_loop(), name=f"backend-drain-{self.endpoint[0]}"
            )

    def _drain_loop(self):
        """Deliver the spill once the breaker lets requests through again.

        Self-terminating: it parks (exits) after ``drain_max_probes``
        consecutive failed probes so a permanently-dead backend cannot
        keep the event heap alive forever — the next spill or successful
        ingest re-arms it.
        """
        misses = 0
        while self._spill:
            wait = max(
                self.breaker.time_until_probe(),
                self.retry.delay(min(misses, 6)),
            )
            yield self.env.timeout(wait)
            if not self.breaker.allow():
                misses += 1
                if misses >= self.drain_max_probes:
                    return
                continue
            body, groups = self._spill[0]
            try:
                response = yield from self._post(body)
                if not response.ok:
                    if 500 <= response.status < 600:
                        raise RetryableBackendError(
                            f"backend unavailable: {response.status}"
                        )
                    # fatal for this body only: shed it and keep draining
                    self._spill.popleft()
                    self.shed.record(groups)
                    continue
            except BaseException as exc:
                if not self.retry.classify(exc):
                    self._spill.popleft()
                    self.shed.record(groups)
                    continue
                self.breaker.record_failure()
                misses += 1
                if misses >= self.drain_max_probes:
                    return
                continue
            self.breaker.record_success()
            misses = 0
            self._spill.popleft()
            for _ in range(groups):
                self.delivered.record()
            self.requests.record(len(body))
            self.spill_drained.record(groups)


class _TranslatorWorker:
    """One pool worker: a subscriber client plus a batched work loop.

    The work loop runs under a supervisor (mirroring the capture
    client's sender supervision): an escaped exception — a backend
    raising a fatal error, or a fault injected through :meth:`crash` —
    is caught, the drained-but-unacked batch is requeued, and the loop
    restarts after a jittered backoff.  Requeued items are consumed
    before the inbox, and the server's dedup index is only *marked*
    after the backend accepted a batch, so a crash between drain and
    ingest re-processes the batch instead of losing it.
    """

    def __init__(self, server: "ProvLightServer", index: int, max_batch: int):
        self.server = server
        self.index = index
        self.max_batch = max(1, max_batch)
        self.env = server.env
        self.client = MqttSnClient(
            server.host,
            f"translator-{index}",
            (server.host.name, server.port),
        )
        #: backref set by the owning pool (elastic pools use it to wake
        #: the autoscale monitor on inbox puts)
        self.pool: Optional["TranslatorPool"] = None
        self._retired = False
        self.topic_filters: List[str] = []
        self._inbox: Store = Store(self.env)
        self._connected = False
        self._connect_gate = None
        self.crashes = Counter(f"translator-{index}-crashes")
        self.restarts = Counter(f"translator-{index}-restarts")
        self.last_failure: Optional[BaseException] = None
        #: items drained off the inbox but not yet acked by the backend;
        #: a restart replays them ahead of fresh inbox traffic (the inbox
        #: is strictly FIFO, so this preserves each client's seq order)
        self._requeue: List[Tuple[str, bytes]] = []
        self._inflight: List[Tuple[str, bytes]] = []
        self._pending_get = None
        self._batches_completed = 0
        self._rng = random.Random(zlib.crc32(f"translator-{index}".encode()))
        self._process = self.env.process(
            self._supervised_loop(), name=f"translator-{index}"
        )

    def crash(self, cause: Any = None) -> None:
        """Injectable fault hook: kill the work loop at its current yield.

        The supervisor catches the interrupt, requeues in-flight work and
        restarts the loop under backoff — this is exactly what a real
        worker process dying and being respawned looks like from the
        outside, minus the lost batch.
        """
        self._process.interrupt(cause if cause is not None else "injected crash")

    def retire(self) -> None:
        """Permanently stop this worker (elastic shrink path).

        Unlike :meth:`crash`, the supervisor does not restart a retired
        worker: the interrupt lands, the loop observes ``_retired`` and
        exits.  The pool has already migrated every topic filter away
        and drained the queues before calling this, so there is no
        in-flight work to recover — only the abandoned inbox waiter to
        detach and the subscriber session to close.
        """
        self._retired = True
        process = self._process
        if process is not None and process.is_alive:
            # nobody waits on the worker process: defuse so the interrupt
            # cannot crash the whole simulation
            process.defused = True
            process.interrupt("retired")
        self._recover_inflight()
        if self._connected:
            self.client.disconnect()
            self._connected = False

    def attach(self, topic_filter: str):
        """Generator: subscribe this worker to ``topic_filter``."""
        yield from self._ensure_connected()
        yield from self.client.subscribe(topic_filter, self._on_message)
        self.topic_filters.append(topic_filter)
        return self

    def _on_message(self, topic: str, payload: bytes) -> None:
        """Inbound PUBLISH handler: enqueue and nudge the autoscaler."""
        self._inbox.put((topic, payload))
        if self.pool is not None:
            self.pool._wake_autoscaler()

    @property
    def endpoint(self) -> Endpoint:
        """This worker's subscriber endpoint as the broker sees it."""
        return (self.client.host.name, self.client.sock.port)

    def _has_pending(self, pattern: str) -> bool:
        """True while any queued/in-flight payload matches ``pattern``
        (the migration drain barrier)."""
        for stage in (self._inbox.items, self._requeue, self._inflight):
            for topic, _payload in stage:
                if topic_matches(pattern, topic):
                    return True
        return False

    def _ensure_connected(self):
        """Generator: connect the subscriber client exactly once, even when
        several attachments race on a cold worker.

        A failed connect is propagated to every waiter and the gate is
        reset first, so a later attach can retry instead of blocking on
        an event that can never trigger."""
        while not self._connected:
            if self._connect_gate is not None:
                yield self._connect_gate
                continue  # re-check: the connecting attach may have failed
            gate = self._connect_gate = self.env.event()
            try:
                yield from self.client.connect()
            except BaseException as exc:
                self._connect_gate = None
                gate.defused = True  # waiters may not exist; don't crash the sim
                gate.fail(exc)
                raise
            self._connected = True
            gate.succeed()

    @property
    def queued(self) -> int:
        """Payloads waiting in this worker's inbox (plus requeued work)."""
        return len(self._inbox.items) + len(self._requeue)

    # -- supervision -------------------------------------------------------
    #: restart backoff knobs (mirroring the capture client's sender
    #: supervision); per-instance overridable for tests
    restart_base_s = 0.05
    restart_factor = 2.0
    restart_max_s = 2.0
    restart_jitter = 0.1

    def _restart_delay(self, attempt: int) -> float:
        delay = min(
            self.restart_max_s, self.restart_base_s * (self.restart_factor ** attempt)
        )
        if self.restart_jitter:
            # deterministic per-worker jitter de-synchronises a pool whose
            # workers all crashed on the same backend fault
            delay *= 1.0 + self.restart_jitter * (2.0 * self._rng.random() - 1.0)
        return max(delay, 1e-9)

    def _supervised_loop(self):
        attempt = 0
        while True:
            try:
                yield from self._work_loop()
            except Exception as exc:  # includes injected Interrupts
                if self._retired:
                    return  # elastic shrink, not a fault: no restart
                self.crashes.record()
                self.last_failure = exc
                self._recover_inflight()
                delay = self._restart_delay(attempt)
                attempt += 1
                if self._batches_completed:
                    # progress since the last crash: treat this one as
                    # fresh rather than escalating the backoff forever
                    attempt = 1
                    self._batches_completed = 0
                while True:
                    try:
                        yield self.env.timeout(delay)
                        break
                    except Exception as exc:
                        if self._retired:
                            return
                        # a crash landed while already restarting: count
                        # it and re-arm the backoff from scratch
                        self.crashes.record()
                        self.last_failure = exc
                self.restarts.record()

    def _recover_inflight(self) -> None:
        """Requeue whatever the crashed loop had drained but not acked."""
        pending = self._pending_get
        self._pending_get = None
        if pending is not None:
            if pending.triggered and pending.ok:
                # the get resolved in the same instant the crash landed:
                # the item was popped off the store for a dead consumer
                self._inflight.insert(0, pending.value)
            else:
                # abandoned waiter: remove it or the store will feed the
                # next arriving item to an event nobody resumes on
                try:
                    self._inbox._get_waiters.remove(pending)
                except ValueError:
                    pass
        if self._inflight:
            self._requeue = self._inflight + self._requeue
            self._inflight = []

    def _work_loop(self):
        server = self.server
        self._inflight = []
        while True:
            if self._requeue:
                batch = self._requeue[: self.max_batch]
                del self._requeue[: len(batch)]
            else:
                self._pending_get = self._inbox.get()
                first = yield self._pending_get
                self._pending_get = None
                batch = [first]
                if self.max_batch > 1:
                    batch.extend(self._inbox.drain_pending(self.max_batch - 1))
            self._inflight = batch
            costs = server.costs
            work = 0.0
            translated_batch: List[Tuple[list, Any]] = []
            batch_marks: List[Tuple[str, int]] = []
            marked = set()
            for _topic, payload in batch:
                # durable clients wrap payloads in a (client_id, seq)
                # envelope: peek it *before* paying any translate cost
                # and drop replays already ingested — this is what turns
                # the client's at-least-once delivery into exactly-once
                # backend ingestion.  The pair is only *marked* after the
                # backend accepts the batch (see below), so a crash in
                # between re-processes instead of losing the records.
                try:
                    envelope = unwrap_payload(payload)
                except Exception:
                    server.translate_errors.record()
                    continue
                if envelope is not None:
                    client_id, seq, payload = envelope
                    if (
                        server.deduper.seen(client_id, seq)
                        or (client_id, seq) in marked
                    ):
                        server.duplicates_dropped.record()
                        continue
                    marked.add((client_id, seq))
                    batch_marks.append((client_id, seq))
                try:
                    records, translated = server.translator.translate_payload(payload)
                except Exception:
                    server.translate_errors.record()
                    continue
                work += costs.translate_per_message_s
                if len(records) > 1:
                    work += costs.translate_group_fixed_s
                translated_batch.append((records, translated))
            if not translated_batch:
                self._inflight = []
                continue
            # one CPU grant covers the whole drained batch: same simulated
            # work as per-message servicing, far fewer scheduler wakeups
            device = server.host.device
            if device is not None:
                yield from device.cpu.run(io_busy_s=work, tag="translator")
            else:
                yield self.env.timeout(work)
            # pipelined ingest: hand the backend the whole drained batch
            # (one bulk request for network backends) when it supports
            # it; otherwise fall back to one ingest per translated group
            backend = server.backend
            ingest_batch = getattr(backend, "ingest_batch", None)
            if ingest_batch is not None:
                yield from ingest_batch([t for _, t in translated_batch])
            else:
                for _records, translated in translated_batch:
                    yield from backend.ingest(translated)
            # the backend accepted the batch: only now do the dedup marks
            # become durable facts (no yield between ingest return and
            # here, so a crash cannot split accept from mark)
            for client_id, seq in batch_marks:
                server.deduper.mark(client_id, seq)
            for records, _translated in translated_batch:
                server.records_ingested.record(len(records))
            self._inflight = []
            self._batches_completed += 1

    def __repr__(self) -> str:
        return (
            f"<TranslatorWorker {self.index} filters={len(self.topic_filters)} "
            f"queued={self.queued}>"
        )


class PoolAutoscaler:
    """Pure hysteresis controller deciding grow/shrink for the pool.

    Feeds on the pool's total queued depth, smooths it into a
    *per-worker* EWMA and demands ``sustain`` consecutive out-of-band
    samples before acting, so transient bursts never resize the pool.

    The no-flap argument (pinned by a property test): with ``w >= 1``
    workers one grow divides the per-worker signal by at most 2
    (``w -> w + 1``) and one shrink multiplies it by at most 2, so
    requiring ``low_water <= high_water / 2`` guarantees a resize can
    never push a constant load across the *opposite* threshold.
    Smoothed state is reset after every resize (and re-seeded from the
    next sample) so stale EWMA history cannot overshoot the band either.
    """

    def __init__(
        self,
        min_workers: int,
        max_workers: int,
        *,
        high_water: float = 8.0,
        low_water: float = 2.0,
        alpha: float = 0.5,
        sustain: int = 3,
    ):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if high_water <= 0 or low_water < 0:
            raise ValueError("water marks must be non-negative (high > 0)")
        if low_water * 2 > high_water:
            raise ValueError(
                "hysteresis requires low_water <= high_water / 2 "
                "(otherwise a single resize can cross the opposite band)"
            )
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if sustain < 1:
            raise ValueError("sustain must be >= 1")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.high_water = high_water
        self.low_water = low_water
        self.alpha = alpha
        self.sustain = sustain
        self.ewma: Optional[float] = None
        self._up_streak = 0
        self._down_streak = 0

    def observe(self, queued: int, workers: int) -> int:
        """Feed one sample; returns +1 (grow), -1 (shrink) or 0 (hold)."""
        per_worker = queued / max(1, workers)
        if self.ewma is None:
            self.ewma = per_worker
        else:
            self.ewma = self.alpha * per_worker + (1 - self.alpha) * self.ewma
        if self.ewma > self.high_water and workers < self.max_workers:
            self._up_streak += 1
            self._down_streak = 0
            if self._up_streak >= self.sustain:
                self.reset()
                return 1
        elif self.ewma < self.low_water and workers > self.min_workers:
            self._down_streak += 1
            self._up_streak = 0
            if self._down_streak >= self.sustain:
                self.reset()
                return -1
        else:
            self._up_streak = self._down_streak = 0
        return 0

    def reset(self) -> None:
        """Forget smoothed state (after a resize the per-worker signal
        jumps discontinuously; history would only lag the new level)."""
        self.ewma = None
        self._up_streak = self._down_streak = 0


class TranslatorPool:
    """Worker pool sharding topics by consistent hashing — elastic
    between ``min_workers`` and ``max_workers``.

    The hash ring carries ``replicas`` virtual points per worker, so
    adding topics spreads evenly and the worker serving a topic is a pure
    function of the topic name — no rebalancing state, no registry
    side effects, and the same layout regardless of the order topics
    are attached in (broker topic ids are sequential, so hashing on
    them would be order-dependent).

    By default ``min_workers == max_workers == size`` and the pool is
    fully static (no monitor process, byte-identical behaviour to the
    fixed pool).  With ``min_workers < max_workers`` a lazily-started,
    self-terminating monitor samples :attr:`queued` every
    ``autoscale_interval_s`` and feeds a :class:`PoolAutoscaler`; each
    grow/shrink re-homes exactly the ring's ~1/K topic share through the
    exactly-once hold-buffer handover of :meth:`_migrate`.
    """

    def __init__(
        self,
        server: "ProvLightServer",
        size: int,
        *,
        replicas: int = 32,
        max_batch: int = 32,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        autoscale_interval_s: float = 0.25,
        high_water: float = 8.0,
        low_water: float = 2.0,
        sustain: int = 3,
        drain_poll_s: float = 0.01,
    ):
        if size <= 0:
            raise ValueError("translator pool needs at least one worker")
        self.server = server
        self.env = server.env
        self.replicas = replicas
        self.worker_max_batch = max_batch
        self.min_workers = size if min_workers is None else min_workers
        self.max_workers = size if max_workers is None else max_workers
        if self.min_workers < 1:
            raise ValueError("pool min_workers must be >= 1")
        if not self.min_workers <= size <= self.max_workers:
            raise ValueError(
                f"pool size {size} outside bounds "
                f"[{self.min_workers}, {self.max_workers}]"
            )
        if autoscale_interval_s <= 0:
            raise ValueError("autoscale_interval_s must be > 0")
        if drain_poll_s <= 0:
            raise ValueError("drain_poll_s must be > 0")
        self.autoscale_interval_s = autoscale_interval_s
        self.drain_poll_s = drain_poll_s
        self.autoscaler = PoolAutoscaler(
            self.min_workers,
            self.max_workers,
            high_water=high_water,
            low_water=low_water,
            sustain=sustain,
        )
        self.workers = [
            _TranslatorWorker(server, i + 1, max_batch) for i in range(size)
        ]
        for worker in self.workers:
            worker.pool = self
        self._ring = ConsistentHashRing(size, replicas=replicas, salt="worker")
        self.grows = Counter("pool-grows")
        self.shrinks = Counter("pool-shrinks")
        self.grow_failures = Counter("pool-grow-failures")
        self.migrated_filters = Counter("pool-migrated-filters")
        self._monitor = None

    def __len__(self) -> int:
        return len(self.workers)

    def worker_for(self, topic_filter: str) -> _TranslatorWorker:
        """The worker a topic shards to (stable, side-effect free)."""
        return self.workers[self._ring.node_for(topic_filter)]

    def attach(self, topic_filter: str):
        """Generator: route ``topic_filter`` to its shard and subscribe."""
        worker = self.worker_for(topic_filter)
        yield from worker.attach(topic_filter)
        return worker

    @property
    def queued(self) -> int:
        """Total payloads waiting across all worker inboxes."""
        return sum(worker.queued for worker in self.workers)

    @property
    def crashes(self) -> int:
        """Worker work-loop crashes caught by supervision, pool-wide."""
        return sum(worker.crashes.count for worker in self.workers)

    @property
    def restarts(self) -> int:
        """Supervised worker restarts, pool-wide."""
        return sum(worker.restarts.count for worker in self.workers)

    # -- elasticity --------------------------------------------------------
    def _wake_autoscaler(self) -> None:
        """Arm the autoscale monitor (called on every worker inbox put).

        The monitor is lazily started and self-terminating — the event
        heap liveness rule: an idle pool at min size must leave the heap
        empty so ``env.run()`` without ``until`` can terminate.  A
        static pool (``max_workers == min_workers``) never starts it.
        """
        if self.max_workers <= self.min_workers:
            return
        if self._monitor is None or not self._monitor.is_alive:
            self._monitor = self.env.process(
                self._autoscale_loop(), name="translator-pool-autoscaler"
            )

    def _autoscale_loop(self):
        idle_ticks = 0
        while True:
            yield self.env.timeout(self.autoscale_interval_s)
            delta = self.autoscaler.observe(self.queued, len(self.workers))
            if delta > 0:
                yield from self._grow()
            elif delta < 0:
                yield from self._shrink()
            if self.queued == 0 and len(self.workers) <= self.min_workers:
                idle_ticks += 1
                if idle_ticks >= 2:
                    return  # parked; the next inbox put re-arms it
            else:
                idle_ticks = 0

    def _grow(self):
        """Generator: add one worker and migrate its ring share onto it."""
        if len(self.workers) >= self.max_workers:
            return
        index = len(self.workers)
        worker = _TranslatorWorker(self.server, index + 1, self.worker_max_batch)
        worker.pool = self
        try:
            yield from worker._ensure_connected()
        except Exception:
            # broker unreachable: abandon the attempt quietly; the next
            # sustained signal retries with a fresh worker
            self.grow_failures.record()
            worker.retire()
            return
        new_ring = ConsistentHashRing(
            index + 1, replicas=self.replicas, salt="worker"
        )
        # the ring-subset property: exactly the filters the (K+1)-ring
        # assigns to the new node move; everything else stays put
        moves = []
        for owner in self.workers:
            for pattern in owner.topic_filters:
                if new_ring.node_for(pattern) == index:
                    moves.append((pattern, owner))
        self.workers.append(worker)
        self._ring = new_ring  # new attaches land by the grown layout
        for pattern, owner in moves:
            yield from self._migrate(pattern, owner, worker)
        self.grows.record()
        self.autoscaler.reset()

    def _shrink(self):
        """Generator: drain and retire the highest-index worker."""
        if len(self.workers) <= self.min_workers:
            return
        dying = self.workers[-1]
        new_ring = ConsistentHashRing(
            len(self.workers) - 1, replicas=self.replicas, salt="worker"
        )
        self._ring = new_ring  # attaches during the drain land on survivors
        for pattern in list(dying.topic_filters):
            target = self.workers[new_ring.node_for(pattern)]
            yield from self._migrate(pattern, dying, target)
        while dying.queued or dying._inflight:
            yield self.env.timeout(self.drain_poll_s)
        self.workers.pop()
        dying.retire()
        self.shrinks.record()
        self.autoscaler.reset()

    def _migrate(self, pattern: str, old: _TranslatorWorker,
                 new: _TranslatorWorker):
        """Generator: hand ``pattern`` (and its queued traffic) from
        ``old`` to ``new`` with exactly-once, order-preserving delivery.

        The hold-buffer handover:

        1. bind a hold buffer for ``pattern`` on the new worker's client
           — deliveries routed there before the handover completes are
           parked, not processed;
        2. flip the filter at the broker's routing index in one
           simulation instant (``move_subscription``): no wire exchange,
           so routing never has a gap (lost PUBLISHes) or an overlap
           (duplicates);
        3. wait until the old worker has flushed every matching payload
           it already received — its handler stays bound meanwhile, so
           deliveries in flight toward the old subscriber when the index
           flipped still land in its inbox and drain in order;
        4. in one instant (no yield): unbind the old handler, move the
           hold buffer into the new worker's inbox, bind its live
           handler.  The old worker finished all matching work before
           any held item is processed, so each capture client's seq
           stream stays ordered across the handover.
        """
        yield from new._ensure_connected()
        broker = self.server.broker
        qos = 2
        for held_pattern, held_qos in (
            broker.subscriptions.subscriptions_of(old.endpoint)
        ):
            if held_pattern == pattern:
                qos = held_qos
                break
        hold: List[Tuple[str, bytes]] = []

        def collect(topic: str, payload: bytes) -> None:
            hold.append((topic, payload))

        new.client.bind_filter(pattern, collect)
        broker.move_subscription(old.endpoint, new.endpoint, pattern, qos)
        # always give in-flight deliveries toward the old subscriber one
        # poll interval to land before declaring the old worker clean
        yield self.env.timeout(self.drain_poll_s)
        while old._has_pending(pattern):
            yield self.env.timeout(self.drain_poll_s)
        old.client.unbind_filter(pattern)
        if pattern in old.topic_filters:
            old.topic_filters.remove(pattern)
        new.client.unbind_filter(pattern, collect)
        for item in hold:
            new._inbox.put(item)
        new.client.bind_filter(pattern, new._on_message)
        new.topic_filters.append(pattern)
        self.migrated_filters.record()

    # -- observability -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Cheap point-in-time snapshot of the translator plane."""
        return {
            "size": len(self.workers),
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "queued": self.queued,
            "ewma_per_worker": self.autoscaler.ewma,
            "grows": self.grows.count,
            "shrinks": self.shrinks.count,
            "grow_failures": self.grow_failures.count,
            "migrated_filters": self.migrated_filters.count,
            "workers": [
                {
                    "index": worker.index,
                    "queued": worker.queued,
                    "filters": len(worker.topic_filters),
                    "crashes": worker.crashes.count,
                    "restarts": worker.restarts.count,
                }
                for worker in self.workers
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<TranslatorPool workers={len(self.workers)} "
            f"bounds=[{self.min_workers},{self.max_workers}] "
            f"queued={self.queued}>"
        )


class ProvLightServer:
    """Sharded broker plane + sharded translator pool on one (cloud) host.

    ``broker_shards`` sizes the :class:`~repro.mqttsn.BrokerCluster`
    behind :attr:`endpoint`; the default of 1 is wire-identical to the
    pre-cluster single broker.  :attr:`broker` exposes the cluster,
    which delegates the standalone broker's surface (``sessions``,
    ``topics``, ``subscriptions``, retry knobs, counters) at any shard
    count.

    ``broker_placement`` selects the cluster's session-placement policy
    (``"hash"`` — pure client-id ring hash, the default — or ``"p2c"``
    — power-of-two-choices on live shard load); ``pool_min`` /
    ``pool_max`` bound the elastic translator pool (both default to
    ``workers``, i.e. a static pool).
    """

    def __init__(
        self,
        host: Host,
        backend,
        port: int = DEFAULT_BROKER_PORT,
        target: str = "dfanalyzer",
        costs: ServerCosts = SERVER_COSTS,
        cipher=None,
        workers: int = DEFAULT_TRANSLATOR_WORKERS,
        broker_shards: int = DEFAULT_BROKER_SHARDS,
        broker_placement: str = "hash",
        pool_min: Optional[int] = None,
        pool_max: Optional[int] = None,
        dedup_state_path: Optional[str] = None,
    ):
        self.host = host
        self.env = host.env
        self.port = port
        self.backend = backend
        self.costs = costs
        self.translator = Translator(target, cipher=cipher)
        self.broker = BrokerCluster(
            host, port,
            shards=broker_shards,
            service_time_s=costs.broker_per_packet_s,
            batch_fixed_s=costs.broker_batch_fixed_s,
            dispatch_fixed_s=costs.broker_dispatch_fixed_s,
            placement=broker_placement,
        )
        self.pool = TranslatorPool(
            self, workers, min_workers=pool_min, max_workers=pool_max
        )
        #: one entry per attached topic filter (compatibility with the
        #: seed's translator-per-topic bookkeeping): the worker shard
        #: each ``add_translator`` call landed on.
        self.translators: List[_TranslatorWorker] = []
        self.records_ingested = Counter("records-ingested")
        self.translate_errors = Counter("translate-errors")
        #: replay dedup shared by every pool worker — a client publishes
        #: to one topic, so all its payloads land on one worker, but the
        #: index is server-wide so re-sharding can never unsee a seq.
        #: With ``dedup_state_path`` the index survives a server restart,
        #: so a sink crash does not re-ingest records that durable
        #: clients replay on reconnect.
        self.deduper = ReplayDeduper(state_path=dedup_state_path)
        self.duplicates_dropped = Counter("duplicates-dropped")

    def add_translator(self, topic_filter: str):
        """Generator: attach ``topic_filter`` to the translator pool.

        Compatibility shim for the paper's one-translator-per-topic
        deployment scripts: call once per device topic, exactly as the
        scalability experiment does (translator-1..64).  Topics shard
        onto the pool's fixed workers instead of spawning new processes.
        """
        worker = yield from self.pool.attach(topic_filter)
        self.translators.append(worker)
        return worker

    @property
    def endpoint(self) -> Endpoint:
        """Where clients should point their broker connection."""
        return (self.host.name, self.port)

    def __repr__(self) -> str:
        return (
            f"<ProvLightServer {self.host.name}:{self.port} "
            f"workers={len(self.pool)} topics={len(self.translators)}>"
        )
