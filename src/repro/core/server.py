"""The ProvLight server: MQTT-SN broker + parallel provenance translators.

Mirrors the paper's Fig. 3/Fig. 5 deployment: an RSMB-style broker
receives the devices' publishes; one translator per topic subscribes,
decodes/decompresses the payloads, translates them (default: to the
DfAnalyzer model) and hands them to a backend — either an in-process
store or an HTTP endpoint of a provenance system.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from ..calibration import SERVER_COSTS, ServerCosts
from ..http import HttpSession
from ..mqttsn import DEFAULT_BROKER_PORT, MqttSnBroker, MqttSnClient
from ..net import Endpoint, Host
from ..simkernel import Counter, Store
from .translator import Translator

__all__ = ["ProvLightServer", "CallableBackend", "HttpBackend"]


class CallableBackend:
    """Adapter delivering translated records to an in-process callable."""

    def __init__(self, fn: Callable[[Any], None]):
        self.fn = fn
        self.delivered = Counter("backend-delivered")

    def ingest(self, translated: Any):
        self.fn(translated)
        self.delivered.record()
        return None
        yield  # pragma: no cover - generator protocol compatibility


class HttpBackend:
    """Adapter POSTing translated records to a provenance system's API."""

    def __init__(self, host: Host, endpoint: Endpoint, path: str = "/pde"):
        self.session = HttpSession(host)
        self.endpoint = endpoint
        self.path = path
        self.delivered = Counter("backend-delivered")

    def ingest(self, translated: Any):
        # compact separators: backend POST bodies are real wire bytes in
        # the simulation, so whitespace would inflate every ingest
        body = json.dumps(translated, default=str, separators=(",", ":")).encode()
        response = yield from self.session.post(self.endpoint, self.path, body)
        if not response.ok:
            raise RuntimeError(f"backend rejected ingest: {response.status}")
        self.delivered.record()


class _TopicTranslator:
    """One translator worker: subscribes to a topic, processes payloads."""

    def __init__(self, server: "ProvLightServer", topic_filter: str, index: int):
        self.server = server
        self.topic_filter = topic_filter
        self.env = server.env
        self.client = MqttSnClient(
            server.host,
            f"translator-{index}",
            (server.host.name, server.port),
        )
        self._inbox: Store = Store(self.env)
        self.env.process(self._work_loop(), name=f"translator-{index}")

    def start(self):
        yield from self.client.connect()
        yield from self.client.subscribe(
            self.topic_filter, lambda topic, payload: self._inbox.put((topic, payload))
        )

    def _work_loop(self):
        costs = self.server.costs
        device = self.server.host.device
        while True:
            topic, payload = yield self._inbox.get()
            try:
                records, translated = self.server.translator.translate_payload(payload)
            except Exception:
                self.server.translate_errors.record()
                continue
            work = costs.translate_per_message_s
            if len(records) > 1:
                work += costs.translate_group_fixed_s
            if device is not None:
                yield from device.cpu.run(io_busy_s=work, tag="translator")
            else:
                yield self.env.timeout(work)
            result = self.server.backend.ingest(translated)
            if result is not None and hasattr(result, "send"):
                yield from result
            self.server.records_ingested.record(len(records))


class ProvLightServer:
    """Broker + translator pool on one (cloud) host."""

    def __init__(
        self,
        host: Host,
        backend,
        port: int = DEFAULT_BROKER_PORT,
        target: str = "dfanalyzer",
        costs: ServerCosts = SERVER_COSTS,
        cipher=None,
    ):
        self.host = host
        self.env = host.env
        self.port = port
        self.backend = backend
        self.costs = costs
        self.translator = Translator(target, cipher=cipher)
        self.broker = MqttSnBroker(host, port, service_time_s=costs.broker_per_packet_s)
        self.translators: List[_TopicTranslator] = []
        self.records_ingested = Counter("records-ingested")
        self.translate_errors = Counter("translate-errors")

    def add_translator(self, topic_filter: str):
        """Generator: spawn a translator subscribed to ``topic_filter``.

        Call once per device topic to parallelize translation, exactly as
        the paper's scalability experiment does (translator-1..64)."""
        worker = _TopicTranslator(self, topic_filter, len(self.translators) + 1)
        self.translators.append(worker)
        yield from worker.start()
        return worker

    @property
    def endpoint(self) -> Endpoint:
        """Where clients should point their broker connection."""
        return (self.host.name, self.port)

    def __repr__(self) -> str:
        return (
            f"<ProvLightServer {self.host.name}:{self.port} "
            f"translators={len(self.translators)}>"
        )
