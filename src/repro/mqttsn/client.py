"""MQTT-SN client: connection, registration, QoS 0/1/2 publish, subscribe.

The client mirrors the Python MQTT-SN library the paper's prototype uses:
a UDP socket, a receive loop matching acknowledgements to in-flight
message ids, and timer-based retransmission (DUP flag) since UDP may drop
datagrams.

Two publish entry points matter for ProvLight:

* :meth:`publish` — generator completing when the QoS contract is done
  (QoS 2: after PUBCOMP);
* :meth:`publish_nowait` — enqueue-and-return; the QoS machinery runs in
  the client's receive loop.  This is what keeps capture off the
  workflow's critical path.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..net import Endpoint, Host
from . import packets as pkt
from .topics import topic_matches

__all__ = ["MqttSnClient", "MqttSnTimeout", "MessageHandler"]

MessageHandler = Callable[[str, bytes], None]


class MqttSnTimeout(pkt.MqttSnError):
    """An acknowledged exchange exceeded its retransmission budget."""


class _Pending:
    """One in-flight exchange awaiting a broker acknowledgement."""

    __slots__ = ("kind", "event", "message", "state")

    def __init__(self, kind: str, event, message: pkt.MqttSnMessage):
        self.kind = kind
        self.event = event
        self.message = message
        self.state = "sent"


class MqttSnClient:
    """An MQTT-SN client bound to one host."""

    def __init__(
        self,
        host: Host,
        client_id: str,
        broker: Endpoint,
        retry_interval_s: float = 1.0,
        max_retries: int = 5,
    ):
        self.host = host
        self.env = host.env
        self.client_id = client_id
        self.broker = broker
        self.retry_interval_s = retry_interval_s
        self.max_retries = max_retries

        self.sock = host.udp_socket()
        self.connected = False
        self._msg_ids = itertools.cycle(range(1, 0x10000))
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        self._connect_event = None
        self._ping_event = None
        self._inbound_qos2: set = set()
        self._topic_names: Dict[int, str] = {}
        #: wildcard-free filters dispatch by dict lookup; only filters
        #: with +/# pay a topic_matches scan per inbound PUBLISH (a pool
        #: worker holding hundreds of exact device topics stays O(1))
        self._exact_handlers: Dict[str, List[MessageHandler]] = {}
        self._wildcard_subs: List[Tuple[str, MessageHandler]] = []
        self.published_count = 0
        self.received_count = 0
        self.env.process(self._recv_loop(), name=f"mqttsn-client-{client_id}")

    # ------------------------------------------------------------------ ops
    def connect(self):
        """Generator: CONNECT / CONNACK exchange (use ``yield from``)."""
        message = pkt.Connect(client_id=self.client_id)
        self._connect_event = self.env.event()
        self._send(message)
        self.env.process(
            self._retry_connect(message, 0),
            name=f"mqttsn-connect-retry-{self.client_id}",
        )
        yield self._connect_event
        self.connected = True
        return self

    def _retry_connect(self, message, attempt):
        yield self.env.timeout(self.retry_interval_s)
        if self._connect_event is not None and not self._connect_event.triggered:
            if attempt >= self.max_retries:
                self._connect_event.fail(MqttSnTimeout("CONNECT timed out"))
            else:
                self._send(message)
                self.env.process(
                    self._retry_connect(message, attempt + 1),
                    name=f"mqttsn-connect-retry-{self.client_id}",
                )

    def register(self, topic_name: str):
        """Generator: REGISTER / REGACK; returns the broker's topic id."""
        msg_id = next(self._msg_ids)
        message = pkt.Register(topic_id=0, msg_id=msg_id, topic_name=topic_name)
        regack = yield from self._tracked_exchange("register", msg_id, message)
        self._topic_names[regack.topic_id] = topic_name
        return regack.topic_id

    def subscribe(self, topic_filter: str, handler: MessageHandler, qos: int = 2):
        """Generator: SUBSCRIBE / SUBACK; registers ``handler`` for
        messages whose topic matches ``topic_filter``."""
        msg_id = next(self._msg_ids)
        message = pkt.Subscribe(msg_id=msg_id, topic_name=topic_filter, qos=qos)
        suback = yield from self._tracked_exchange("subscribe", msg_id, message)
        if suback.topic_id:
            self._topic_names[suback.topic_id] = topic_filter
        self.bind_filter(topic_filter, handler)
        return suback.topic_id

    def bind_filter(self, topic_filter: str, handler: MessageHandler) -> None:
        """Bind ``handler`` for inbound PUBLISHes matching ``topic_filter``
        without any wire exchange.

        The client-side half of a control-plane subscription handover
        (``BrokerCluster.move_subscription``): the broker's routing index
        flips the filter to this client's session atomically, and the
        receiving client rebinds its local dispatch to match.  Normal
        subscriptions go through :meth:`subscribe`, which performs the
        SUBSCRIBE/SUBACK exchange and then calls this.
        """
        if "+" in topic_filter or "#" in topic_filter:
            self._wildcard_subs.append((topic_filter, handler))
        else:
            self._exact_handlers.setdefault(topic_filter, []).append(handler)

    def unbind_filter(
        self, topic_filter: str, handler: Optional[MessageHandler] = None
    ) -> None:
        """Remove handlers bound to ``topic_filter`` (all when ``handler``
        is None) — local only, the broker-side subscription is untouched."""
        if "+" in topic_filter or "#" in topic_filter:
            self._wildcard_subs = [
                (pattern, bound)
                for pattern, bound in self._wildcard_subs
                if not (pattern == topic_filter
                        and (handler is None or bound is handler))
            ]
            return
        handlers = self._exact_handlers.get(topic_filter)
        if handlers is None:
            return
        if handler is None:
            del self._exact_handlers[topic_filter]
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._exact_handlers[topic_filter]

    def publish(self, topic_id: int, payload: bytes, qos: int = 2):
        """Generator completing when the QoS contract is fulfilled."""
        done = self.publish_nowait(topic_id, payload, qos)
        result = yield done
        return result

    def publish_nowait(self, topic_id: int, payload: bytes, qos: int = 2):
        """Send a PUBLISH; returns the completion event without waiting.

        QoS 0 events complete immediately; QoS 1 on PUBACK; QoS 2 on
        PUBCOMP.  The exchange (including retransmissions) is driven by
        the receive loop, off the caller's critical path.
        """
        if not self.connected:
            raise pkt.MqttSnError("publish before connect")
        msg_id = next(self._msg_ids) if qos > 0 else 0
        message = pkt.Publish(topic_id=topic_id, msg_id=msg_id, payload=payload, qos=qos)
        self.published_count += 1
        if qos == 0:
            self._send(message)
            done = self.env.event()
            done.succeed(None)
            return done
        kind = "publish"
        done = self.env.event()
        pending = _Pending(kind, done, message)
        self._pending[(kind, msg_id)] = pending
        self._send(message)
        self.env.process(
            self._retry_pending(kind, msg_id, 0), name=f"mqttsn-retry-{kind}-{msg_id}"
        )
        return done

    def ping(self):
        """Generator: PINGREQ / PINGRESP round trip."""
        self._ping_event = self.env.event()
        self._send(pkt.Pingreq())
        yield self._ping_event

    def disconnect(self) -> None:
        """Send DISCONNECT and stop (fire and forget, per spec)."""
        if self.connected:
            self._send(pkt.Disconnect())
            self.connected = False

    # ---------------------------------------------------------------- internals
    def _send(self, message: pkt.MqttSnMessage) -> None:
        self.sock.sendto(message.encode(), self.broker)

    def _tracked_exchange(self, kind: str, msg_id: int, message):
        done = self.env.event()
        self._pending[(kind, msg_id)] = _Pending(kind, done, message)
        self._send(message)
        self.env.process(
            self._retry_pending(kind, msg_id, 0), name=f"mqttsn-retry-{kind}-{msg_id}"
        )
        reply = yield done
        return reply

    def _retry_pending(self, kind: str, msg_id: int, attempt: int):
        yield self.env.timeout(self.retry_interval_s)
        pending = self._pending.get((kind, msg_id))
        if pending is None:
            return
        if attempt >= self.max_retries:
            del self._pending[(kind, msg_id)]
            pending.event.fail(MqttSnTimeout(f"{kind} #{msg_id} timed out"))
            return
        message = pending.message
        if pending.state == "pubrel":
            self._send(pkt.Pubrel(msg_id=msg_id))
        else:
            if isinstance(message, pkt.Publish):
                message.dup = True
            self._send(message)
        self.env.process(
            self._retry_pending(kind, msg_id, attempt + 1),
            name=f"mqttsn-retry-{kind}-{msg_id}",
        )

    def _recv_loop(self):
        while True:
            data, source = yield self.sock.recv()
            try:
                message = pkt.decode(data)
            except pkt.MalformedPacket:
                continue
            self._dispatch(message)

    def _dispatch(self, message: pkt.MqttSnMessage) -> None:
        if isinstance(message, pkt.Connack):
            if self._connect_event is not None and not self._connect_event.triggered:
                if message.return_code == pkt.RC_ACCEPTED:
                    self._connect_event.succeed(message)
                else:
                    self._connect_event.fail(
                        pkt.MqttSnError(f"CONNECT rejected: {message.return_code}")
                    )
            return
        if isinstance(message, pkt.Regack):
            self._complete(("register", message.msg_id), message)
            return
        if isinstance(message, pkt.Suback):
            self._complete(("subscribe", message.msg_id), message)
            return
        if isinstance(message, pkt.Puback):
            self._complete(("publish", message.msg_id), message)
            return
        if isinstance(message, pkt.Pubrec):
            pending = self._pending.get(("publish", message.msg_id))
            if pending is not None:
                pending.state = "pubrel"
            self._send(pkt.Pubrel(msg_id=message.msg_id))
            return
        if isinstance(message, pkt.Pubcomp):
            self._complete(("publish", message.msg_id), message)
            return
        if isinstance(message, pkt.Publish):
            self._on_inbound_publish(message)
            return
        if isinstance(message, pkt.Pubrel):
            self._inbound_qos2.discard(message.msg_id)
            self._send(pkt.Pubcomp(msg_id=message.msg_id))
            return
        if isinstance(message, pkt.Register):
            # broker informs the topic mapping for wildcard subscriptions
            self._topic_names[message.topic_id] = message.topic_name
            self._send(pkt.Regack(topic_id=message.topic_id, msg_id=message.msg_id))
            return
        if isinstance(message, pkt.Pingresp):
            if self._ping_event is not None and not self._ping_event.triggered:
                self._ping_event.succeed()
            return
        if isinstance(message, pkt.Pingreq):
            self._send(pkt.Pingresp())
            return
        # CONNECT/SUBSCRIBE/etc. are not expected at a client: ignore.

    def _complete(self, key: Tuple[str, int], message) -> None:
        pending = self._pending.pop(key, None)
        if pending is not None and not pending.event.triggered:
            pending.event.succeed(message)

    def _on_inbound_publish(self, message: pkt.Publish) -> None:
        if message.qos == 1:
            self._send(pkt.Puback(topic_id=message.topic_id, msg_id=message.msg_id))
        elif message.qos == 2:
            self._send(pkt.Pubrec(msg_id=message.msg_id))
            if message.msg_id in self._inbound_qos2:
                return  # duplicate of an unreleased exactly-once message
            self._inbound_qos2.add(message.msg_id)
        topic = self._topic_names.get(message.topic_id, f"?{message.topic_id}")
        self.received_count += 1
        for handler in self._exact_handlers.get(topic, ()):
            handler(topic, message.payload)
        for pattern, handler in self._wildcard_subs:
            if topic_matches(pattern, topic):
                handler(topic, message.payload)

    def __repr__(self) -> str:
        return f"<MqttSnClient {self.client_id}@{self.host.name}>"
