"""MQTT-SN v1.2 wire format.

Binary encode/decode for the subset of MQTT for Sensor Networks
(Stanford-Clark & Truong, IBM, 2013) that the RSMB broker and the
ProvLight client exercise: connection setup, topic registration,
publishing at QoS 0/1/2 with the exactly-once handshake
(PUBLISH / PUBREC / PUBREL / PUBCOMP), subscriptions, ping and
disconnect.

Every message encodes to real bytes — the byte counts the harness reports
for Fig. 6c come from these encoders plus the UDP/IP headers.

Framing: ``length`` (1 octet, or ``0x01`` + 2 octets when > 255) followed
by ``msgType`` and the variable part.  Integers are big-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Type

__all__ = [
    "MqttSnError",
    "MalformedPacket",
    "MqttSnMessage",
    "Connect",
    "Connack",
    "Register",
    "Regack",
    "Publish",
    "Puback",
    "Pubrec",
    "Pubrel",
    "Pubcomp",
    "Subscribe",
    "Suback",
    "Pingreq",
    "Pingresp",
    "Disconnect",
    "encode",
    "decode",
    "RC_ACCEPTED",
    "RC_CONGESTION",
    "RC_INVALID_TOPIC",
    "RC_NOT_SUPPORTED",
]

# message type octets (spec Table 3)
MT_CONNECT = 0x04
MT_CONNACK = 0x05
MT_REGISTER = 0x0A
MT_REGACK = 0x0B
MT_PUBLISH = 0x0C
MT_PUBACK = 0x0D
MT_PUBCOMP = 0x0E
MT_PUBREC = 0x0F
MT_PUBREL = 0x10
MT_SUBSCRIBE = 0x12
MT_SUBACK = 0x13
MT_PINGREQ = 0x16
MT_PINGRESP = 0x17
MT_DISCONNECT = 0x18

# return codes
RC_ACCEPTED = 0x00
RC_CONGESTION = 0x01
RC_INVALID_TOPIC = 0x02
RC_NOT_SUPPORTED = 0x03

# flag bits (spec section 5.3.4)
FLAG_DUP = 0x80
FLAG_QOS_MASK = 0x60
FLAG_RETAIN = 0x10
FLAG_CLEAN = 0x04


class MqttSnError(Exception):
    """Base protocol error."""


class MalformedPacket(MqttSnError):
    """Bytes that do not decode to a valid MQTT-SN message."""


#: preallocated ``length | msgType`` short-frame headers, indexed
#: ``[msg_type][total]`` — every QoS 2 publish sends four control packets
#: through :func:`_frame`, so the per-call ``bytes([total, msg_type])``
#: allocation was pure hot-path overhead
_SHORT_HEADERS = {
    msg_type: tuple(bytes((total, msg_type)) for total in range(256))
    for msg_type in (
        MT_CONNECT, MT_CONNACK, MT_REGISTER, MT_REGACK, MT_PUBLISH,
        MT_PUBACK, MT_PUBCOMP, MT_PUBREC, MT_PUBREL, MT_SUBSCRIBE,
        MT_SUBACK, MT_PINGREQ, MT_PINGRESP, MT_DISCONNECT,
    )
}

_pack_long_frame = struct.Struct(">BHB").pack
_pack_publish_head = struct.Struct(">BHH").pack


def _frame(msg_type: int, body: bytes) -> bytes:
    total = 2 + len(body)  # length octet + type octet + body
    if total <= 255:
        return _SHORT_HEADERS[msg_type][total] + body
    total = 4 + len(body)  # 3 length octets + type octet + body
    return _pack_long_frame(0x01, total, msg_type) + body


def _qos_to_flags(qos: int) -> int:
    if qos not in (0, 1, 2):
        raise ValueError(f"invalid QoS {qos}")
    return (qos << 5) & FLAG_QOS_MASK


def _flags_to_qos(flags: int) -> int:
    return (flags & FLAG_QOS_MASK) >> 5


@dataclass
class MqttSnMessage:
    """Base class: every message knows how to encode itself."""

    MSG_TYPE: ClassVar[int] = 0

    def encode(self) -> bytes:
        return _frame(self.MSG_TYPE, self._body())

    def _body(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def wire_size(self) -> int:
        """Encoded size in bytes."""
        return len(self.encode())


@dataclass
class Connect(MqttSnMessage):
    client_id: str = ""
    duration: int = 60
    clean_session: bool = True

    MSG_TYPE: ClassVar[int] = MT_CONNECT

    def _body(self) -> bytes:
        flags = FLAG_CLEAN if self.clean_session else 0
        cid = self.client_id.encode()
        if not 1 <= len(cid) <= 23:
            raise ValueError("client id must be 1..23 bytes")
        return bytes([flags, 0x01]) + struct.pack(">H", self.duration) + cid

    @classmethod
    def _parse(cls, body: bytes) -> "Connect":
        if len(body) < 5:
            raise MalformedPacket("CONNECT too short")
        flags, _proto = body[0], body[1]
        (duration,) = struct.unpack(">H", body[2:4])
        return cls(
            client_id=body[4:].decode(),
            duration=duration,
            clean_session=bool(flags & FLAG_CLEAN),
        )


@dataclass
class Connack(MqttSnMessage):
    return_code: int = RC_ACCEPTED

    MSG_TYPE: ClassVar[int] = MT_CONNACK

    def _body(self) -> bytes:
        return bytes([self.return_code])

    @classmethod
    def _parse(cls, body: bytes) -> "Connack":
        if len(body) != 1:
            raise MalformedPacket("CONNACK length")
        return cls(return_code=body[0])


@dataclass
class Register(MqttSnMessage):
    topic_id: int = 0  # 0 when client registers (broker assigns)
    msg_id: int = 0
    topic_name: str = ""

    MSG_TYPE: ClassVar[int] = MT_REGISTER

    def _body(self) -> bytes:
        return struct.pack(">HH", self.topic_id, self.msg_id) + self.topic_name.encode()

    @classmethod
    def _parse(cls, body: bytes) -> "Register":
        if len(body) < 5:
            raise MalformedPacket("REGISTER too short")
        topic_id, msg_id = struct.unpack(">HH", body[:4])
        return cls(topic_id=topic_id, msg_id=msg_id, topic_name=body[4:].decode())


@dataclass
class Regack(MqttSnMessage):
    topic_id: int = 0
    msg_id: int = 0
    return_code: int = RC_ACCEPTED

    MSG_TYPE: ClassVar[int] = MT_REGACK

    def _body(self) -> bytes:
        return struct.pack(">HHB", self.topic_id, self.msg_id, self.return_code)

    @classmethod
    def _parse(cls, body: bytes) -> "Regack":
        if len(body) != 5:
            raise MalformedPacket("REGACK length")
        topic_id, msg_id, rc = struct.unpack(">HHB", body)
        return cls(topic_id=topic_id, msg_id=msg_id, return_code=rc)


@dataclass
class Publish(MqttSnMessage):
    topic_id: int = 0
    msg_id: int = 0
    payload: bytes = b""
    qos: int = 0
    dup: bool = False
    retain: bool = False

    MSG_TYPE: ClassVar[int] = MT_PUBLISH

    def _body(self) -> bytes:
        flags = _qos_to_flags(self.qos)
        if self.dup:
            flags |= FLAG_DUP
        if self.retain:
            flags |= FLAG_RETAIN
        # one pack + one concat instead of three intermediate allocations
        return _pack_publish_head(flags, self.topic_id, self.msg_id) + self.payload

    @classmethod
    def _parse(cls, body: bytes) -> "Publish":
        if len(body) < 5:
            raise MalformedPacket("PUBLISH too short")
        flags = body[0]
        topic_id, msg_id = struct.unpack(">HH", body[1:5])
        return cls(
            topic_id=topic_id,
            msg_id=msg_id,
            payload=body[5:],
            qos=_flags_to_qos(flags),
            dup=bool(flags & FLAG_DUP),
            retain=bool(flags & FLAG_RETAIN),
        )


def _make_msgid_only(name: str, msg_type: int):
    """PUBREC / PUBREL / PUBCOMP share a msgId-only body."""

    @dataclass
    class _MsgIdOnly(MqttSnMessage):
        msg_id: int = 0

        MSG_TYPE: ClassVar[int] = msg_type

        def _body(self) -> bytes:
            return struct.pack(">H", self.msg_id)

        @classmethod
        def _parse(cls, body: bytes):
            if len(body) != 2:
                raise MalformedPacket(f"{name} length")
            return cls(msg_id=struct.unpack(">H", body)[0])

    _MsgIdOnly.__name__ = _MsgIdOnly.__qualname__ = name
    return _MsgIdOnly


Pubrec = _make_msgid_only("Pubrec", MT_PUBREC)
Pubrel = _make_msgid_only("Pubrel", MT_PUBREL)
Pubcomp = _make_msgid_only("Pubcomp", MT_PUBCOMP)


@dataclass
class Puback(MqttSnMessage):
    topic_id: int = 0
    msg_id: int = 0
    return_code: int = RC_ACCEPTED

    MSG_TYPE: ClassVar[int] = MT_PUBACK

    def _body(self) -> bytes:
        return struct.pack(">HHB", self.topic_id, self.msg_id, self.return_code)

    @classmethod
    def _parse(cls, body: bytes) -> "Puback":
        if len(body) != 5:
            raise MalformedPacket("PUBACK length")
        topic_id, msg_id, rc = struct.unpack(">HHB", body)
        return cls(topic_id=topic_id, msg_id=msg_id, return_code=rc)


@dataclass
class Subscribe(MqttSnMessage):
    msg_id: int = 0
    topic_name: str = ""
    qos: int = 0

    MSG_TYPE: ClassVar[int] = MT_SUBSCRIBE

    def _body(self) -> bytes:
        return bytes([_qos_to_flags(self.qos)]) + struct.pack(">H", self.msg_id) + self.topic_name.encode()

    @classmethod
    def _parse(cls, body: bytes) -> "Subscribe":
        if len(body) < 3:
            raise MalformedPacket("SUBSCRIBE too short")
        flags = body[0]
        (msg_id,) = struct.unpack(">H", body[1:3])
        return cls(msg_id=msg_id, topic_name=body[3:].decode(), qos=_flags_to_qos(flags))


@dataclass
class Suback(MqttSnMessage):
    topic_id: int = 0
    msg_id: int = 0
    return_code: int = RC_ACCEPTED
    qos: int = 0

    MSG_TYPE: ClassVar[int] = MT_SUBACK

    def _body(self) -> bytes:
        return (
            bytes([_qos_to_flags(self.qos)])
            + struct.pack(">HHB", self.topic_id, self.msg_id, self.return_code)
        )

    @classmethod
    def _parse(cls, body: bytes) -> "Suback":
        if len(body) != 6:
            raise MalformedPacket("SUBACK length")
        flags = body[0]
        topic_id, msg_id, rc = struct.unpack(">HHB", body[1:])
        return cls(topic_id=topic_id, msg_id=msg_id, return_code=rc, qos=_flags_to_qos(flags))


@dataclass
class Pingreq(MqttSnMessage):
    MSG_TYPE: ClassVar[int] = MT_PINGREQ

    def _body(self) -> bytes:
        return b""

    @classmethod
    def _parse(cls, body: bytes) -> "Pingreq":
        return cls()


@dataclass
class Pingresp(MqttSnMessage):
    MSG_TYPE: ClassVar[int] = MT_PINGRESP

    def _body(self) -> bytes:
        return b""

    @classmethod
    def _parse(cls, body: bytes) -> "Pingresp":
        return cls()


@dataclass
class Disconnect(MqttSnMessage):
    duration: int = 0  # 0: no sleep

    MSG_TYPE: ClassVar[int] = MT_DISCONNECT

    def _body(self) -> bytes:
        if self.duration:
            return struct.pack(">H", self.duration)
        return b""

    @classmethod
    def _parse(cls, body: bytes) -> "Disconnect":
        if len(body) == 0:
            return cls()
        if len(body) == 2:
            return cls(duration=struct.unpack(">H", body)[0])
        raise MalformedPacket("DISCONNECT length")


_TYPES: Dict[int, Type[MqttSnMessage]] = {
    MT_CONNECT: Connect,
    MT_CONNACK: Connack,
    MT_REGISTER: Register,
    MT_REGACK: Regack,
    MT_PUBLISH: Publish,
    MT_PUBACK: Puback,
    MT_PUBREC: Pubrec,
    MT_PUBREL: Pubrel,
    MT_PUBCOMP: Pubcomp,
    MT_SUBSCRIBE: Subscribe,
    MT_SUBACK: Suback,
    MT_PINGREQ: Pingreq,
    MT_PINGRESP: Pingresp,
    MT_DISCONNECT: Disconnect,
}


def encode(message: MqttSnMessage) -> bytes:
    """Encode a message to wire bytes."""
    return message.encode()


def decode(data: bytes) -> MqttSnMessage:
    """Decode one MQTT-SN message from wire bytes."""
    if len(data) < 2:
        raise MalformedPacket("packet shorter than minimal frame")
    if data[0] == 0x01:
        if len(data) < 4:
            raise MalformedPacket("truncated long frame")
        (length,) = struct.unpack(">H", data[1:3])
        msg_type, body = data[3], data[4:]
        expected = length - 4
    else:
        length = data[0]
        msg_type, body = data[1], data[2:]
        expected = length - 2
    if len(body) != expected:
        raise MalformedPacket(
            f"length field says {expected} body bytes, got {len(body)}"
        )
    cls = _TYPES.get(msg_type)
    if cls is None:
        raise MalformedPacket(f"unknown message type {msg_type:#x}")
    return cls._parse(body)
