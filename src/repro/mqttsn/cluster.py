"""Horizontally sharded MQTT-SN broker plane behind one logical endpoint.

One :class:`~repro.mqttsn.broker.MqttSnBroker` owning the whole UDP port
is the server's next bottleneck once batch servicing and indexed routing
are in place (paper Table IX fan-in): every datagram still serializes
through a single service loop.  :class:`BrokerCluster` partitions the
session space across N broker shards — consistent hashing on the MQTT-SN
*client id*, the same ring scheme the :class:`~repro.core.server.
TranslatorPool` uses for topics — so shards service their sessions in
parallel (multi-core scale-out in the simulated world) while devices
keep configuring a single broker address.

Layout (see ``docs/server-architecture.md``):

* a :class:`~repro.net.UdpShardDispatcher` owns the public port, peeks
  the message-type octet of each datagram (CONNECTs re-pin by client id,
  everything else follows the source endpoint's sticky pin) and forwards
  per-shard *bundles* per wakeup — ``broker_dispatch_fixed_s`` per
  bundle plus ``broker_dispatch_per_datagram_s`` per datagram, so heavy
  fan-in amortizes the fixed dispatch work;
* each shard is a stock ``MqttSnBroker`` servicing only its own
  sessions, sending replies through the shared front socket so the wire
  shows one endpoint;
* every shard's :class:`SubscriptionIndex` replicates its mutations into
  a cluster-wide **routing view** (same exact-map + wildcard-trie
  structure), so a PUBLISH arriving on shard A also matches subscribers
  homed on shard B; those deliveries travel as **inter-shard relay
  events** — staged during A's service batch, flushed once per batch,
  and delivered by B with B's own retry timers and
  ``delivery_failures`` accounting.

Session placement is policy-driven (the ``placement`` knob): the default
``"hash"`` policy keeps the historical pure client-id ring hash, while
``"p2c"`` places each *new* CONNECT by power-of-two-choices over live
per-shard load (sessions + socket queue depth) — under skewed client
populations the hash policy leaves the hottest shard with far more than
1/N of the sessions, and p2c restores near-even spread.  Either way a
**sticky placement table** records the chosen owner per client id so
CONNECT retransmissions, dispatcher repins, failover migration and
durable-client reconnects all agree; the (weighted) ring remains the
fallback for ids never explicitly placed.

A cluster of one is wire- and behaviour-identical to a standalone
broker: no dispatcher, no replication, no relay — the single shard binds
the public port directly.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional, Tuple
from zlib import crc32

from ..calibration import SERVER_COSTS
from ..hashring import ConsistentHashRing
from ..net import Endpoint, Host, UdpShardDispatcher
from ..simkernel import Counter
from . import packets as pkt
from .broker import DEFAULT_BROKER_PORT, MqttSnBroker
from .topics import SubscriptionIndex

__all__ = [
    "BrokerCluster",
    "DEFAULT_BROKER_SHARDS",
    "PLACEMENT_POLICIES",
    "pick_two_choices",
]

#: valid values for the ``placement`` knob, threaded as
#: ``--broker-placement`` through the harness and e2clab layers
PLACEMENT_POLICIES = ("hash", "p2c")


def pick_two_choices(
    candidates: List[int],
    load: Callable[[int], float],
    rng: random.Random,
) -> int:
    """Power-of-two-choices over ``candidates``: sample two distinct
    entries, return the one with the smaller ``load`` (ties break to the
    lower index, so the choice is deterministic given the rng state).

    The classic balls-into-bins result: sampling *two* bins and taking
    the emptier drops the expected maximum load from Θ(log n / log log n)
    to Θ(log log n) — almost all the benefit of a full scan at the cost
    of two probes.  Pure function of its arguments; the property suite
    pins that the result is always drawn from ``candidates``.
    """
    if not candidates:
        raise ValueError("pick_two_choices needs at least one candidate")
    if len(candidates) == 1:
        return candidates[0]
    a, b = rng.sample(candidates, 2)
    load_a, load_b = load(a), load(b)
    if load_a < load_b:
        return a
    if load_b < load_a:
        return b
    return min(a, b)

#: a single shard keeps the server byte-for-byte compatible with the
#: pre-cluster deployment; scale-out is opt-in via the knob threaded
#: through :class:`~repro.core.server.ProvLightServer` and the harness
DEFAULT_BROKER_SHARDS = 1


def _peek_frame(data: bytes) -> Tuple[Optional[int], bytes]:
    """``(message type octet, body)`` without a full decode.

    This is the classifier's whole protocol knowledge: the two framing
    layouts.  Anything malformed yields ``(None, b"")``, routes by
    sticky pin and lets the owning shard's decoder reject it.
    """
    if len(data) < 2:
        return None, b""
    if data[0] == 0x01:  # long frame: 0x01 + 2 length octets + type
        if len(data) < 4:
            return None, b""
        return data[3], data[4:]
    return data[1], data[2:data[0]]


def _peek_connect_client_id(data: bytes) -> Optional[str]:
    """Client id when ``data`` frames an MQTT-SN CONNECT, else None."""
    msg_type, body = _peek_frame(data)
    if msg_type != pkt.MT_CONNECT:
        return None
    if len(body) < 5:  # flags + protocol id + duration (2) + client id
        return None
    try:
        return body[4:].decode()
    except UnicodeDecodeError:
        return None


class _ReplicatedIndex(SubscriptionIndex):
    """A shard's subscription index that mirrors into the cluster view.

    Every mutation is replicated into the cluster's shared routing view
    together with the subscriber's home shard.  In cluster mode PUBLISH
    routing matches the shared view once (see :class:`_ClusterRelay`);
    the inherited local state keeps the shard self-describing and is
    what the broker's CONNECT/DISCONNECT paths clean up.
    """

    def __init__(self, cluster: "BrokerCluster", shard_index: int):
        super().__init__()
        self._cluster = cluster
        self._shard_index = shard_index

    def add(self, key: Hashable, pattern: str, qos: int = 0) -> None:
        super().add(key, pattern, qos)
        self._cluster.routing_view.add(key, pattern, qos)
        self._cluster._home[key] = self._shard_index

    def discard(self, key: Hashable, pattern: str) -> bool:
        if not super().discard(key, pattern):
            return False
        self._cluster.routing_view.discard(key, pattern)
        if not self._filters.get(key):
            # last filter gone: the key no longer homes here for relay
            self._cluster._home.pop(key, None)
        return True

    def remove(self, key: Hashable) -> None:
        super().remove(key)
        self._cluster.routing_view.remove(key)
        self._cluster._home.pop(key, None)


class _ClusterRelay:
    """Stages cross-shard deliveries and relays them one event per batch.

    ``route`` is called by a shard for every PUBLISH it forwards: one
    match over the cluster routing view (the shard-local index is a
    strict subset — matching both would double the hot-path work) whose
    hits are partitioned by home shard.  Local subscribers are staged
    straight back into the origin shard's batch; the rest are buffered
    per destination shard until ``flush``, which runs once per service
    batch and emits one relay event per destination — so back-to-back
    PUBLISHes crossing shards arrive as one coalesced group under a
    single retry timer, exactly like local deliveries.
    """

    def __init__(self, cluster: "BrokerCluster"):
        self._cluster = cluster
        self._staged: Dict[int, List[Tuple[object, str, pkt.Publish, int]]] = {}

    def route(self, origin: MqttSnBroker, topic_name: str, message: pkt.Publish) -> None:
        cluster = self._cluster
        origin_index = cluster.index_of(origin)
        for endpoint, sub_qos in cluster.routing_view.match(topic_name):
            home = cluster._home.get(endpoint)
            if home is None:
                continue
            qos = min(message.qos, sub_qos)
            if home == origin_index:
                session = origin.sessions.get(endpoint)
                if session is None:
                    continue
                cluster._record_delivery_origin(endpoint, origin_index)
                origin._stage_delivery(session, topic_name, message, qos)
            else:
                # bind to the session live *now* (the single broker's
                # dispatch-time rule: the subscription matched while it
                # was live, so a DISCONNECT or re-CONNECT racing the
                # relay hop does not unsend the delivery)
                session = cluster.shards[home].sessions.get(endpoint)
                if session is None:
                    continue
                cluster._record_delivery_origin(endpoint, origin_index)
                cluster._maybe_rehome(endpoint)
                self._staged.setdefault(home, []).append(
                    (session, topic_name, message, qos)
                )

    def flush(self, origin: MqttSnBroker) -> None:
        if not self._staged:
            return
        staged, self._staged = self._staged, {}
        cluster = self._cluster
        for index, entries in staged.items():
            cluster.relayed.record(len(entries))
            cluster.env.process(
                self._deliver(cluster.shards[index], entries),
                name=f"relay-deliver-{index}",
            )

    def _deliver(self, shard: MqttSnBroker, entries) -> None:
        # one relay hop per (origin batch, destination shard): the same
        # bundle + per-entry work the front dispatcher pays
        cluster = self._cluster
        yield cluster.env.timeout(
            cluster.dispatch_fixed_s
            + cluster.dispatch_per_datagram_s * len(entries)
        )
        if shard.crashed:
            # The destination died with this hop in flight.  Wait for the
            # watchdog to fail it over (which re-homes its subscriber
            # sessions), then re-route each entry to the new owner — a
            # relay must not become the loss window that the publisher's
            # QoS exchange already acknowledged past.
            yield cluster._failover_event(cluster.index_of(shard))
            cluster.relay_redirected.record(len(entries))
            regrouped: Dict[int, List] = {}
            for entry in entries:
                home = cluster._home.get(entry[0].endpoint)
                if home is None or not cluster.shards[home].alive:
                    cluster.relay_dropped.record()
                    continue
                regrouped.setdefault(home, []).append(entry)
            for home, group in regrouped.items():
                dest = cluster.shards[home]
                for session, topic_name, message, qos in group:
                    dest._stage_delivery(session, topic_name, message, qos)
                dest._flush_deliveries()
            return
        # A subscriber may have moved (shard-affinity rehome, failover
        # migration) while this hop was in flight: deliver each entry at
        # its *current* home — staging at a shard that no longer owns the
        # session would park outbound QoS state whose acks can never
        # arrive there.
        fallback = cluster.index_of(shard)
        regrouped = {}
        for entry in entries:
            home = cluster._home.get(entry[0].endpoint, fallback)
            if home != fallback and not cluster.shards[home].alive:
                home = fallback
            regrouped.setdefault(home, []).append(entry)
        for home, group in regrouped.items():
            dest = cluster.shards[home]
            for session, topic_name, message, qos in group:
                dest._stage_delivery(session, topic_name, message, qos)
            dest._flush_deliveries()


class BrokerCluster:
    """N broker shards behind one public endpoint.

    Constructor knobs mirror :class:`MqttSnBroker` and are applied to
    every shard; ``dispatch_fixed_s`` prices the front dispatcher and
    each inter-shard relay hop.

    ``placement`` selects the session-placement policy for new CONNECTs
    (see module docstring): ``"hash"`` (default, pure client-id ring
    hash) or ``"p2c"`` (power-of-two-choices on live shard load).  The
    ``rehome_*`` knobs govern **shard-affinity rehoming**: a subscriber
    whose deliveries overwhelmingly originate on another shard is
    voluntarily migrated there to turn relay hops into local deliveries
    (only when no in-flight QoS state would be stranded).
    """

    def __init__(
        self,
        host: Host,
        port: int = DEFAULT_BROKER_PORT,
        shards: int = DEFAULT_BROKER_SHARDS,
        service_time_s: float = SERVER_COSTS.broker_per_packet_s,
        batch_fixed_s: float = SERVER_COSTS.broker_batch_fixed_s,
        dispatch_fixed_s: float = SERVER_COSTS.broker_dispatch_fixed_s,
        dispatch_per_datagram_s: float = SERVER_COSTS.broker_dispatch_per_datagram_s,
        max_batch: int = 64,
        retry_interval_s: float = 1.0,
        max_retries: int = 5,
        replicas: int = 32,
        failover_detect_s: float = 0.05,
        placement: str = "hash",
        rehome_min_deliveries: int = 64,
        rehome_margin: float = 2.0,
    ):
        if shards <= 0:
            raise ValueError("broker cluster needs at least one shard")
        if failover_detect_s <= 0:
            raise ValueError("failover_detect_s must be > 0")
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )
        if rehome_min_deliveries < 1:
            raise ValueError("rehome_min_deliveries must be >= 1")
        if rehome_margin < 1.0:
            raise ValueError("rehome_margin must be >= 1.0")
        self.host = host
        self.env = host.env
        self.port = port
        self.dispatch_fixed_s = dispatch_fixed_s
        self.dispatch_per_datagram_s = dispatch_per_datagram_s
        self.failover_detect_s = failover_detect_s
        self.placement = placement
        self.rehome_min_deliveries = rehome_min_deliveries
        self.rehome_margin = rehome_margin
        shard_kwargs = dict(
            service_time_s=service_time_s,
            batch_fixed_s=batch_fixed_s,
            max_batch=max_batch,
            retry_interval_s=retry_interval_s,
            max_retries=max_retries,
        )
        self.relayed = Counter("relayed-deliveries")
        if shards == 1:
            # wire-identical to a standalone broker: it binds the public
            # port itself; no dispatcher, no replication, no relay
            self.dispatcher = None
            self.routing_view: Optional[SubscriptionIndex] = None
            self._home: Dict[Endpoint, int] = {}
            self._ring: Optional[ConsistentHashRing] = None
            self.shards: List[MqttSnBroker] = [
                MqttSnBroker(host, port, **shard_kwargs)
            ]
        else:
            self.routing_view = SubscriptionIndex()
            self._home = {}
            self._ring = ConsistentHashRing(shards, replicas=replicas, salt="shard")
            self.dispatcher = UdpShardDispatcher(
                host,
                port,
                shards,
                classify=self._classify,
                dispatch_fixed_s=dispatch_fixed_s,
                dispatch_per_datagram_s=dispatch_per_datagram_s,
                max_batch=max_batch,
                on_repin=self._on_repin,
            )
            relay = _ClusterRelay(self)
            self.shards = [
                MqttSnBroker(
                    host,
                    port,
                    sock=self.dispatcher.sockets[i],
                    subscriptions=_ReplicatedIndex(self, i),
                    relay=relay,
                    **shard_kwargs,
                )
                for i in range(shards)
            ]
        self._index_by_id = {id(shard): i for i, shard in enumerate(self.shards)}
        # ---- placement state: see _place() / shard_of() ------------------
        #: sticky client-id -> shard decisions; consulted before any policy
        #: so CONNECT retransmissions, repins and durable reconnects agree
        self._placement: Dict[str, int] = {}
        self._p2c_rng = random.Random(crc32(f"{host.name}:{port}".encode()))
        self.p2c_placements = Counter("p2c-placements")
        # ---- shard-affinity rehoming state: see _maybe_rehome() ----------
        #: per-subscriber delivery counts keyed by originating shard
        self._sub_origins: Dict[Endpoint, Dict[int, int]] = {}
        #: endpoints with a rehome decision already scheduled
        self._rehoming: set = set()
        self.rehomed = Counter("subscribers-rehomed")
        # ---- failover state: see kill_shard() / _failover() --------------
        self.failovers = Counter("shard-failovers")
        self.sessions_migrated = Counter("failover-sessions-migrated")
        self.sessions_dropped = Counter("failover-sessions-dropped")
        self.relay_redirected = Counter("relay-redirected")
        self.relay_dropped = Counter("relay-dropped")
        #: shards whose failover has completed (indices stay valid; a dead
        #: shard keeps its slot so ring/pin indices never shift)
        self._failed_over: set = set()
        self._failover_events: Dict[int, object] = {}
        self._watchdog = None

    # ------------------------------------------------------------ failover
    @property
    def alive_shards(self) -> List[int]:
        """Indices of shards whose service loop is running."""
        return [i for i, s in enumerate(self.shards) if s.alive]

    def kill_shard(self, index: int) -> None:
        """Injectable kill hook: crash shard ``index`` and arm detection.

        The shard's service loop dies immediately (datagrams already
        forwarded to it are lost, exactly like a crashed process losing
        its socket buffer); the cluster watchdog detects the dead shard
        after :attr:`failover_detect_s` and runs :meth:`_failover`.
        Durable clients ride their QoS retries into a reconnect and
        replay from the journal, so no acknowledged record is lost.
        """
        if self._ring is None:
            raise ValueError("cannot fail over a single-shard cluster")
        shard = self.shards[index]
        if shard.alive:
            shard.crash()
        self._failover_event(index)  # arms the watchdog

    def check_shards(self) -> List[int]:
        """Liveness probe: arm failover for any dead, unhandled shard.

        :meth:`kill_shard` calls this implicitly; it is public so a
        harness embedding its own fault source (e.g. a shard crashed by
        an injected exception rather than the kill hook) can trigger
        detection.  Returns the indices found dead and not yet failed
        over.
        """
        if self._ring is None:
            return []
        dead = [
            i for i, s in enumerate(self.shards)
            if not s.alive and i not in self._failed_over
        ]
        for index in dead:
            self._failover_event(index)
        return dead

    def _failover_event(self, index: int):
        """Event triggering once shard ``index`` has been failed over."""
        event = self._failover_events.get(index)
        if event is None:
            event = self._failover_events[index] = self.env.event()
            self._ensure_watchdog()
        return event

    def _ensure_watchdog(self) -> None:
        if self._watchdog is not None and self._watchdog.is_alive:
            return
        self._watchdog = self.env.process(
            self._watchdog_loop(),
            name=f"cluster-watchdog-{self.host.name}:{self.port}",
        )

    def _watchdog_loop(self):
        # Lazily-started, self-terminating liveness probe: it only runs
        # while a dead shard awaits failover, so a healthy cluster leaves
        # the event heap empty and ``env.run()`` can terminate.
        while True:
            yield self.env.timeout(self.failover_detect_s)
            for index, shard in enumerate(self.shards):
                if not shard.alive and index not in self._failed_over:
                    self._failover(index)
            if all(
                s.alive or i in self._failed_over
                for i, s in enumerate(self.shards)
            ):
                return

    def _failover(self, index: int) -> None:
        """Remove a dead shard from the plane and re-home its sessions.

        Subscriber sessions (they hold filters in the routing view) are
        *migrated*: the session object moves to the ring's new owner with
        its ``known_topic_ids`` cleared — topic ids are shard-local, so
        the new shard re-REGISTERs topics ahead of the next delivery —
        and its filters are re-added through the new shard's replicated
        index, which re-homes them for relay routing.  Publisher sessions
        are *dropped*: their in-flight QoS state names topic ids only the
        dead shard could resolve, so the honest move is to let the
        client's retry exhaustion trip its reconnect machinery — a fresh
        CONNECT classifies onto the shrunk ring and a durable client
        replays from its journal, deduplicated server-side.
        """
        dead = self.shards[index]
        dead.crashed = True  # stops leftover retry timers for real crashes
        self._failed_over.add(index)
        # invalidate sticky placements naming the corpse *before* re-homing:
        # reconnecting durable clients and the migration loop below must
        # both re-place through the live policy, not repin to the dead shard
        for client_id in [
            cid for cid, placed in self._placement.items() if placed == index
        ]:
            del self._placement[client_id]
        if len(self._ring.live_nodes()) <= 1:
            # the last shard died: there is no survivor to re-home onto;
            # drop the sessions and leave the (empty) ring alone so a
            # total-outage experiment still terminates cleanly
            self.dispatcher.invalidate_shard(index)
            for endpoint in list(dead.sessions):
                dead.subscriptions.remove(endpoint)
                self._sub_origins.pop(endpoint, None)
                self.sessions_dropped.record()
            dead.sessions.clear()
            dead._outbound.clear()
            self.failovers.record()
            event = self._failover_events.get(index)
            if event is not None and not event.triggered:
                event.succeed()
            return
        self._ring.remove_node(index)
        self.dispatcher.invalidate_shard(index)
        for endpoint, session in list(dead.sessions.items()):
            filters = dead.subscriptions.subscriptions_of(endpoint)
            dead.subscriptions.remove(endpoint)  # replicated: view + home
            self._sub_origins.pop(endpoint, None)
            if not filters:
                self.sessions_dropped.record()
                continue
            # place through the live policy: p2c sees the survivors'
            # session counts shift as this loop migrates, hash falls back
            # to the shrunk ring (the historical behaviour)
            new_index = self._place(session.client_id)
            new = self.shards[new_index]
            if not new.alive:
                # the new owner is a corpse awaiting its own failover
                # (several shards died in the same detection window):
                # migrating onto it just defers the drop, so be honest
                self.sessions_dropped.record()
                continue
            session.known_topic_ids.clear()
            new.sessions[endpoint] = session
            for pattern, qos in filters:
                new.subscriptions.add(endpoint, pattern, qos)
            self.dispatcher.pins[endpoint] = new_index
            self._placement[session.client_id] = new_index
            self.sessions_migrated.record()
        dead.sessions.clear()
        dead._outbound.clear()
        self._rebalance_weights()
        self.failovers.record()
        event = self._failover_events.get(index)
        if event is not None and not event.triggered:
            event.succeed()

    def _rebalance_weights(self) -> None:
        """Recompute ring weights from live per-shard session load.

        After a failover the survivors are uneven (one of them absorbed
        the dead shard's subscribers); biasing the ring's virtual points
        inversely to session count steers *future* ring-fallback traffic
        — hash placements and unpinned datagrams — toward the lighter
        shards.  Weights are clamped to [0.25, 4] so no shard ever loses
        (or monopolises) the key space outright.
        """
        alive = self.alive_shards
        if self._ring is None or len(alive) <= 1:
            return
        mean = sum(len(self.shards[i].sessions) for i in alive) / len(alive)
        for i in alive:
            weight = (mean + 1.0) / (len(self.shards[i].sessions) + 1.0)
            self._ring.set_weight(i, min(4.0, max(0.25, weight)))

    # ------------------------------------------------------------- routing
    def shard_of(self, client_id: str) -> int:
        """The shard index a client id homes to (side-effect free).

        Consults the sticky placement table first (so callers agree with
        whatever the CONNECT-time policy decided), then falls back to the
        weighted ring for ids never placed — which also keeps this a pure
        ring hash in the default configuration.
        """
        if self._ring is None:
            return 0
        placed = self._placement.get(client_id)
        if placed is not None and self.shards[placed].alive:
            return placed
        return self._ring.node_for(client_id)

    def _place(self, client_id: str) -> int:
        """Pick the owning shard for ``client_id`` (no recording).

        Sticky decisions are honoured while their shard is alive; new
        decisions go through the configured policy.  Callers that commit
        to the decision record it in ``self._placement`` themselves —
        the split keeps speculative calls (e.g. a migration target that
        turns out to be a corpse) from poisoning the sticky table.
        """
        if self._ring is None:
            return 0
        placed = self._placement.get(client_id)
        if placed is not None and self.shards[placed].alive:
            return placed
        if self.placement == "p2c":
            alive = self.alive_shards
            if alive:
                index = pick_two_choices(
                    alive,
                    lambda i: len(self.shards[i].sessions)
                    + self.shards[i].sock.pending,
                    self._p2c_rng,
                )
                self.p2c_placements.record()
                return index
        return self._ring.node_for(client_id)

    def index_of(self, shard: MqttSnBroker) -> int:
        return self._index_by_id[id(shard)]

    def _classify(
        self, payload: bytes, source: Endpoint, current: Optional[int]
    ) -> int:
        msg_type, _ = _peek_frame(payload)
        if msg_type == pkt.MT_CONNECT:
            client_id = _peek_connect_client_id(payload)
            if client_id is not None:
                index = self._place(client_id)
                self._placement[client_id] = index
                return index
        elif msg_type == pkt.MT_DISCONNECT and current is not None:
            # the session ends at its shard; release the sticky pin once
            # this datagram has been forwarded (zero-delay event, so the
            # DISCONNECT itself still routes by the pin) — churning
            # endpoints must not accrete dispatcher state forever
            self.env.process(self._unpin_after_forward(source), name="dispatcher-unpin")
        if current is not None:
            return current
        # unpinned non-CONNECT traffic: route deterministically by source
        # so the owning shard's no-session accounting sees it (a single
        # broker would record dropped_no_session for exactly this case)
        return self._ring.node_for(f"{source[0]}:{source[1]}")

    def _unpin_after_forward(self, source: Endpoint):
        yield self.env.timeout(0)
        self.dispatcher.unpin(source)

    def _on_repin(self, source: Endpoint, old_index: int, new_index: int) -> None:
        """A source re-identified onto another shard: purge the old home.

        Mirrors the single broker, where a fresh CONNECT replaces the
        endpoint's previous session state and subscriptions.
        """
        old = self.shards[old_index]
        old.subscriptions.remove(source)
        old.sessions.pop(source, None)
        # in-flight QoS state towards this endpoint can never complete on
        # the old shard (its acks now route to the new pin): drop it
        # rather than retransmit to exhaustion and record spurious
        # delivery failures for a live, acking client
        for key in [k for k in old._outbound if k[0] == source]:
            del old._outbound[key]
        self._sub_origins.pop(source, None)

    # ----------------------------------------- subscription / session moves
    def _subscriber_shard(self, endpoint: Endpoint) -> int:
        """Index of the shard currently owning ``endpoint``'s session."""
        for index, shard in enumerate(self.shards):
            if endpoint in shard.sessions:
                return index
        raise KeyError(f"no session for endpoint {endpoint}")

    def move_subscription(
        self,
        old_endpoint: Endpoint,
        new_endpoint: Endpoint,
        pattern: str,
        qos: int = 0,
    ) -> None:
        """Atomically re-home one filter between two connected subscribers.

        The broker half of a control-plane subscription handover: the
        filter is discarded from ``old_endpoint``'s index and added under
        ``new_endpoint``'s in the same simulation instant, so routing
        never sees a gap (lost PUBLISHes) or an overlap (duplicates) the
        way a wire UNSUBSCRIBE/SUBSCRIBE pair would.  The receiving
        client must rebind its local dispatch (``MqttSnClient.
        bind_filter``); the elastic :class:`~repro.core.server.
        TranslatorPool` drives this when topic ranges move between
        workers.  Raises ``KeyError`` when either endpoint has no session
        or the old endpoint does not hold ``pattern``.
        """
        old_shard = self.shards[self._subscriber_shard(old_endpoint)]
        new_shard = self.shards[self._subscriber_shard(new_endpoint)]
        if not old_shard.subscriptions.discard(old_endpoint, pattern):
            raise KeyError(
                f"endpoint {old_endpoint} does not hold filter {pattern!r}"
            )
        new_shard.subscriptions.add(new_endpoint, pattern, qos)

    # -------------------------------------------- shard-affinity rehoming
    def _record_delivery_origin(self, endpoint: Endpoint, origin: int) -> None:
        origins = self._sub_origins.get(endpoint)
        if origins is None:
            origins = self._sub_origins[endpoint] = {}
        origins[origin] = origins.get(origin, 0) + 1

    def _maybe_rehome(self, endpoint: Endpoint) -> None:
        """Schedule a shard-affinity move when one remote origin dominates.

        Checked on the relay path only (local deliveries never motivate a
        move).  The decision runs in a zero-delay process so the session
        never moves in the middle of a routing match.
        """
        origins = self._sub_origins.get(endpoint)
        if origins is None or endpoint in self._rehoming:
            return
        total = sum(origins.values())
        if total < self.rehome_min_deliveries or total % 16:
            return
        home = self._home.get(endpoint)
        if home is None:
            return
        best = max(sorted(origins), key=lambda i: origins[i])
        if best == home or not self.shards[best].alive:
            return
        if origins[best] < self.rehome_margin * max(1, origins.get(home, 0)):
            return
        self._rehoming.add(endpoint)
        self.env.process(
            self._rehome_later(endpoint, best), name="cluster-rehome"
        )

    def _rehome_later(self, endpoint: Endpoint, new_index: int):
        yield self.env.timeout(0)
        try:
            self.rehome_subscriber(endpoint, new_index)
        finally:
            self._rehoming.discard(endpoint)

    def rehome_subscriber(self, endpoint: Endpoint, new_index: int) -> bool:
        """Voluntarily migrate one subscriber session to ``new_index``.

        Turns dominant relay traffic into local deliveries: the session
        object moves with ``known_topic_ids`` cleared (ids are
        shard-local; the new shard re-REGISTERs ahead of its next
        delivery), filters are re-added through the new shard's
        replicated index, and the dispatcher pin plus sticky placement
        follow.  Returns False — deferring, not failing — whenever the
        move is unsafe or moot: unknown session, same shard, a dead
        endpoint of the hop, or in-flight outbound QoS state on the old
        shard whose acknowledgements would be stranded by the move.
        """
        if self._ring is None:
            raise ValueError("cannot rehome on a single-shard cluster")
        try:
            old_index = self._subscriber_shard(endpoint)
        except KeyError:
            return False
        if old_index == new_index:
            return False
        old, new = self.shards[old_index], self.shards[new_index]
        if not old.alive or not new.alive:
            return False
        if any(key[0] == endpoint for key in old._outbound):
            return False
        session = old.sessions.get(endpoint)
        filters = old.subscriptions.subscriptions_of(endpoint)
        if session is None or not filters:
            return False
        old.subscriptions.remove(endpoint)
        del old.sessions[endpoint]
        session.known_topic_ids.clear()
        new.sessions[endpoint] = session
        for pattern, qos in filters:
            new.subscriptions.add(endpoint, pattern, qos)
        self.dispatcher.pins[endpoint] = new_index
        self._placement[session.client_id] = new_index
        self._sub_origins.pop(endpoint, None)
        self.rehomed.record()
        return True

    # ----------------------------------------------------- delegated views
    @property
    def endpoint(self) -> Endpoint:
        """The single public address clients configure."""
        return (self.host.name, self.port)

    @property
    def sessions(self) -> Dict[Endpoint, object]:
        """All live sessions across shards (endpoints are disjoint)."""
        if len(self.shards) == 1:
            return self.shards[0].sessions
        merged: Dict[Endpoint, object] = {}
        for shard in self.shards:
            merged.update(shard.sessions)
        return merged

    @property
    def subscriptions(self) -> SubscriptionIndex:
        """Cluster-wide subscription state (the shared routing view)."""
        if self.routing_view is None:
            return self.shards[0].subscriptions
        return self.routing_view

    @property
    def topics(self):
        """Topic registry of shard 0 (registries are shard-local; ids
        are only meaningful between a client and its home shard)."""
        return self.shards[0].topics

    @property
    def retry_interval_s(self) -> float:
        return self.shards[0].retry_interval_s

    @retry_interval_s.setter
    def retry_interval_s(self, value: float) -> None:
        for shard in self.shards:
            shard.retry_interval_s = value

    @property
    def max_retries(self) -> int:
        return self.shards[0].max_retries

    @max_retries.setter
    def max_retries(self, value: int) -> None:
        for shard in self.shards:
            shard.max_retries = value

    # --------------------------------------------------- aggregate counters
    class _Aggregate:
        """Read-only sum of one counter across every shard."""

        __slots__ = ("name", "_counters")

        def __init__(self, name: str, counters):
            self.name = name
            self._counters = counters

        @property
        def count(self) -> int:
            return sum(c.count for c in self._counters)

        @property
        def total(self) -> float:
            return sum(c.total for c in self._counters)

        def __repr__(self) -> str:
            return f"<Aggregate {self.name}: n={self.count} total={self.total}>"

    def _aggregate(self, attr: str) -> "BrokerCluster._Aggregate":
        if len(self.shards) == 1:
            return getattr(self.shards[0], attr)
        return self._Aggregate(attr, [getattr(s, attr) for s in self.shards])

    @property
    def forwarded(self):
        return self._aggregate("forwarded")

    @property
    def dropped_no_session(self):
        return self._aggregate("dropped_no_session")

    @property
    def delivery_failures(self):
        return self._aggregate("delivery_failures")

    @property
    def serviced_batches(self):
        return self._aggregate("serviced_batches")

    # --------------------------------------------------------- observability
    def stats(self) -> Dict[str, object]:
        """Cheap point-in-time snapshot of the broker plane.

        Plain counter/len reads — no locking, no simulation time — so
        the autoscaler, the benchmarks and operators can poll it on the
        hot path.  ``max_mean_session_ratio`` is the skew figure the
        placement acceptance criteria gate on (1.0 = perfectly even).
        """
        pins = (
            self.dispatcher.pin_counts() if self.dispatcher is not None else {}
        )
        per_shard = []
        for i, shard in enumerate(self.shards):
            per_shard.append({
                "index": i,
                "alive": shard.alive,
                "sessions": len(shard.sessions),
                "inbox_depth": shard.sock.pending,
                "pinned_endpoints": pins.get(i, 0),
                "forwarded": shard.forwarded.count,
                "serviced_batches": shard.serviced_batches.count,
                "delivery_failures": shard.delivery_failures.count,
            })
        live_counts = [s["sessions"] for s in per_shard if s["alive"]]
        mean = sum(live_counts) / len(live_counts) if live_counts else 0.0
        return {
            "placement": self.placement,
            "shards": per_shard,
            "sessions": sum(live_counts),
            "placement_entries": len(self._placement),
            "max_mean_session_ratio": (
                max(live_counts) / mean if live_counts and mean else 0.0
            ),
            "relayed": self.relayed.count,
            "relay_redirected": self.relay_redirected.count,
            "relay_dropped": self.relay_dropped.count,
            "rehomed": self.rehomed.count,
            "failovers": self.failovers.count,
        }

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return (
            f"<BrokerCluster {self.host.name}:{self.port} "
            f"shards={len(self.shards)} sessions={len(self.sessions)} "
            f"placement={self.placement}>"
        )
