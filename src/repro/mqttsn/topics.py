"""Topic registry, MQTT-style topic matching and the subscription index.

The broker assigns 16-bit topic ids to topic names (MQTT-SN REGISTER) and
matches published topics against subscription filters with the standard
MQTT wildcards: ``+`` (one level) and ``#`` (any tail, last level only).

:class:`SubscriptionIndex` is the broker's routing structure: an exact-topic
hash map plus a segment trie for wildcard filters, maintained incrementally
on SUBSCRIBE/DISCONNECT so that routing one PUBLISH costs O(topic segments)
instead of O(sessions x subscriptions).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

__all__ = [
    "TopicRegistry",
    "SubscriptionIndex",
    "topic_matches",
    "validate_filter",
]


def validate_filter(pattern: str) -> None:
    """Raise ``ValueError`` for malformed subscription filters."""
    if not pattern:
        raise ValueError("empty topic filter")
    levels = pattern.split("/")
    for i, level in enumerate(levels):
        if level == "#" and i != len(levels) - 1:
            raise ValueError(f"'#' must be the last level: {pattern!r}")
        if "#" in level and level != "#":
            raise ValueError(f"'#' must occupy a whole level: {pattern!r}")
        if "+" in level and level != "+":
            raise ValueError(f"'+' must occupy a whole level: {pattern!r}")


def topic_matches(pattern: str, topic: str) -> bool:
    """True when ``topic`` matches the subscription ``pattern``."""
    p_levels = pattern.split("/")
    t_levels = topic.split("/")
    for i, p in enumerate(p_levels):
        if p == "#":
            return True
        if i >= len(t_levels):
            return False
        if p == "+":
            continue
        if p != t_levels[i]:
            return False
    return len(p_levels) == len(t_levels)


class TopicRegistry:
    """Bidirectional topic-name <-> topic-id mapping (broker-wide)."""

    def __init__(self) -> None:
        self._by_name: Dict[str, int] = {}
        self._by_id: Dict[int, str] = {}
        self._next_id = 1

    def register(self, name: str) -> int:
        """Return the topic id for ``name``, assigning one if new.

        Wildcards are not registrable (they are subscription filters).
        """
        if not name:
            raise ValueError("empty topic name")
        if "+" in name or "#" in name:
            raise ValueError(f"cannot register wildcard topic {name!r}")
        tid = self._by_name.get(name)
        if tid is None:
            tid = self._next_id
            if tid > 0xFFFF:
                raise OverflowError("topic id space exhausted")
            self._next_id += 1
            self._by_name[name] = tid
            self._by_id[tid] = name
        return tid

    def name_of(self, topic_id: int) -> Optional[str]:
        return self._by_id.get(topic_id)

    def id_of(self, name: str) -> Optional[int]:
        return self._by_name.get(name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


class _TrieNode:
    """One level of the wildcard-filter trie.

    ``children`` is keyed by the literal segment, ``"+"`` or ``"#"``;
    ``subs`` holds the subscribers whose filter *ends* at this node, as
    ``key -> (seq, qos)``.
    """

    __slots__ = ("children", "subs")

    def __init__(self) -> None:
        self.children: Dict[str, _TrieNode] = {}
        self.subs: Dict[Hashable, Tuple[int, int]] = {}


class SubscriptionIndex:
    """Incrementally-maintained subscription routing index.

    Filters without wildcards live in a hash map (one lookup per PUBLISH);
    wildcard filters live in a segment trie walked level by level.  Each
    subscription is stamped with an insertion sequence number so
    :meth:`match` can preserve the broker's first-subscription-wins QoS
    semantics when one subscriber holds several overlapping filters.

    Keys are opaque hashables identifying a subscriber (the broker uses
    session endpoints).
    """

    def __init__(self) -> None:
        self._exact: Dict[str, Dict[Hashable, Tuple[int, int]]] = {}
        self._root = _TrieNode()
        self._filters: Dict[Hashable, List[str]] = {}
        self._seq = 0
        self._wildcards = 0

    def __len__(self) -> int:
        """Number of live (key, filter) subscriptions."""
        return sum(len(filters) for filters in self._filters.values())

    def add(self, key: Hashable, pattern: str, qos: int = 0) -> None:
        """Index ``pattern`` for subscriber ``key`` (validates the filter).

        Re-adding a filter a key already holds is a no-op keeping the
        original QoS — the broker delivers with the earliest matching
        subscription, so the index mirrors that (and a client that
        periodically re-SUBSCRIBEs must not grow broker state).
        """
        validate_filter(pattern)
        filters = self._filters.setdefault(key, [])
        if pattern in filters:
            return
        seq = self._seq
        self._seq += 1
        filters.append(pattern)
        if "+" not in pattern and "#" not in pattern:
            self._exact.setdefault(pattern, {})[key] = (seq, qos)
            return
        node = self._root
        for segment in pattern.split("/"):
            node = node.children.setdefault(segment, _TrieNode())
        node.subs[key] = (seq, qos)
        self._wildcards += 1

    def subscriptions_of(self, key: Hashable) -> List[Tuple[str, int]]:
        """``[(pattern, qos), ...]`` held by ``key``, in subscription order.

        The failover path uses this to re-create a subscriber's filters on
        its new home shard; QoS is looked up from the exact map / trie so
        the migrated subscription keeps its delivery guarantee.
        """
        out: List[Tuple[str, int]] = []
        for pattern in self._filters.get(key, ()):
            if "+" not in pattern and "#" not in pattern:
                out.append((pattern, self._exact[pattern][key][1]))
                continue
            node = self._root
            for segment in pattern.split("/"):
                node = node.children[segment]
            out.append((pattern, node.subs[key][1]))
        return out

    def discard(self, key: Hashable, pattern: str) -> bool:
        """Drop one ``(key, pattern)`` subscription; True when it existed.

        The control-plane half of a subscription handover: an elastic
        :class:`TranslatorPool` re-homes a topic range by discarding the
        filter from the old worker's key and re-adding it under the new
        worker's in the same simulation instant, so routing never sees a
        gap (lost PUBLISHes) or an overlap (duplicate deliveries).
        """
        filters = self._filters.get(key)
        if not filters or pattern not in filters:
            return False
        filters.remove(pattern)
        if not filters:
            del self._filters[key]
        if "+" not in pattern and "#" not in pattern:
            bucket = self._exact.get(pattern)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._exact[pattern]
            return True
        self._trie_remove(self._root, pattern.split("/"), 0, key)
        self._wildcards -= 1
        return True

    def remove(self, key: Hashable) -> None:
        """Drop every subscription held by ``key`` (DISCONNECT path)."""
        for pattern in self._filters.pop(key, ()):
            if "+" not in pattern and "#" not in pattern:
                bucket = self._exact.get(pattern)
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        del self._exact[pattern]
                continue
            self._trie_remove(self._root, pattern.split("/"), 0, key)
            self._wildcards -= 1

    def _trie_remove(
        self, node: _TrieNode, segments: List[str], depth: int, key: Hashable
    ) -> bool:
        """Remove ``key``'s filter below ``node``; True if node is prunable."""
        if depth == len(segments):
            node.subs.pop(key, None)
        else:
            child = node.children.get(segments[depth])
            if child is not None and self._trie_remove(child, segments, depth + 1, key):
                del node.children[segments[depth]]
        return not node.subs and not node.children

    def match(self, topic: str) -> List[Tuple[Hashable, int]]:
        """Subscribers matching ``topic`` as ``[(key, qos), ...]``.

        One entry per subscriber (earliest matching filter wins the QoS),
        ordered by subscription age for deterministic delivery order.
        """
        best: Dict[Hashable, Tuple[int, int]] = {}
        bucket = self._exact.get(topic)
        if bucket:
            best.update(bucket)
        if self._wildcards:
            hits: List[Tuple[Hashable, Tuple[int, int]]] = []
            self._trie_match(self._root, topic.split("/"), 0, hits)
            for key, entry in hits:
                held = best.get(key)
                if held is None or entry[0] < held[0]:
                    best[key] = entry
        if not best:
            return []
        ordered = sorted(best.items(), key=lambda item: item[1][0])
        return [(key, entry[1]) for key, entry in ordered]

    def _trie_match(
        self,
        node: _TrieNode,
        segments: List[str],
        depth: int,
        hits: List[Tuple[Hashable, Tuple[int, int]]],
    ) -> None:
        children = node.children
        # "#" swallows the remaining levels, including none at all (the
        # MQTT rule that "a/#" also matches the parent topic "a").
        tail = children.get("#")
        if tail is not None and tail.subs:
            hits.extend(tail.subs.items())
        if depth == len(segments):
            if node.subs:
                hits.extend(node.subs.items())
            return
        child = children.get(segments[depth])
        if child is not None:
            self._trie_match(child, segments, depth + 1, hits)
        plus = children.get("+")
        if plus is not None:
            self._trie_match(plus, segments, depth + 1, hits)
