"""Topic registry and MQTT-style topic matching.

The broker assigns 16-bit topic ids to topic names (MQTT-SN REGISTER) and
matches published topics against subscription filters with the standard
MQTT wildcards: ``+`` (one level) and ``#`` (any tail, last level only).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["TopicRegistry", "topic_matches", "validate_filter"]


def validate_filter(pattern: str) -> None:
    """Raise ``ValueError`` for malformed subscription filters."""
    if not pattern:
        raise ValueError("empty topic filter")
    levels = pattern.split("/")
    for i, level in enumerate(levels):
        if level == "#" and i != len(levels) - 1:
            raise ValueError(f"'#' must be the last level: {pattern!r}")
        if "#" in level and level != "#":
            raise ValueError(f"'#' must occupy a whole level: {pattern!r}")
        if "+" in level and level != "+":
            raise ValueError(f"'+' must occupy a whole level: {pattern!r}")


def topic_matches(pattern: str, topic: str) -> bool:
    """True when ``topic`` matches the subscription ``pattern``."""
    p_levels = pattern.split("/")
    t_levels = topic.split("/")
    for i, p in enumerate(p_levels):
        if p == "#":
            return True
        if i >= len(t_levels):
            return False
        if p == "+":
            continue
        if p != t_levels[i]:
            return False
    return len(p_levels) == len(t_levels)


class TopicRegistry:
    """Bidirectional topic-name <-> topic-id mapping (broker-wide)."""

    def __init__(self) -> None:
        self._by_name: Dict[str, int] = {}
        self._by_id: Dict[int, str] = {}
        self._next_id = 1

    def register(self, name: str) -> int:
        """Return the topic id for ``name``, assigning one if new.

        Wildcards are not registrable (they are subscription filters).
        """
        if not name:
            raise ValueError("empty topic name")
        if "+" in name or "#" in name:
            raise ValueError(f"cannot register wildcard topic {name!r}")
        tid = self._by_name.get(name)
        if tid is None:
            tid = self._next_id
            if tid > 0xFFFF:
                raise OverflowError("topic id space exhausted")
            self._next_id += 1
            self._by_name[name] = tid
            self._by_id[tid] = name
        return tid

    def name_of(self, topic_id: int) -> Optional[str]:
        return self._by_id.get(topic_id)

    def id_of(self, name: str) -> Optional[int]:
        return self._by_name.get(name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
