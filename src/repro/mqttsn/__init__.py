"""MQTT-SN (MQTT for Sensor Networks) over simulated UDP.

Wire-accurate packet codec, a client with QoS 0/1/2 state machines and
retransmission, an RSMB-style broker with topic registry and wildcard
subscriptions, and exactly-once (QoS 2) semantics in both directions.
"""

from . import packets
from .broker import DEFAULT_BROKER_PORT, MqttSnBroker
from .client import MessageHandler, MqttSnClient, MqttSnTimeout
from .cluster import DEFAULT_BROKER_SHARDS, BrokerCluster
from .packets import (
    Connack,
    Connect,
    Disconnect,
    MalformedPacket,
    MqttSnError,
    MqttSnMessage,
    Pingreq,
    Pingresp,
    Puback,
    Pubcomp,
    Publish,
    Pubrec,
    Pubrel,
    Regack,
    Register,
    Suback,
    Subscribe,
    decode,
    encode,
)
from .topics import SubscriptionIndex, TopicRegistry, topic_matches, validate_filter

__all__ = [
    "packets",
    "MqttSnBroker",
    "BrokerCluster",
    "DEFAULT_BROKER_PORT",
    "DEFAULT_BROKER_SHARDS",
    "MqttSnClient",
    "MqttSnTimeout",
    "MessageHandler",
    "TopicRegistry",
    "SubscriptionIndex",
    "topic_matches",
    "validate_filter",
    "MqttSnMessage",
    "MqttSnError",
    "MalformedPacket",
    "Connect",
    "Connack",
    "Register",
    "Regack",
    "Publish",
    "Puback",
    "Pubrec",
    "Pubrel",
    "Pubcomp",
    "Subscribe",
    "Suback",
    "Pingreq",
    "Pingresp",
    "Disconnect",
    "encode",
    "decode",
]
