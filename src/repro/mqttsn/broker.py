"""MQTT-SN broker in the style of Eclipse RSMB (Really Small Message
Broker), which the paper's ProvLight server embeds.

Single receive loop over one UDP port.  Each wakeup drains *every*
datagram already queued on the socket and charges one batched service
time (``broker_batch_fixed_s`` amortized over the batch plus
``broker_per_packet_s`` per datagram), which models an epoll-style server
and creates realistic queueing when 64 devices publish concurrently
(paper Table IX).  Routing uses an incrementally-maintained
:class:`~repro.mqttsn.topics.SubscriptionIndex` (exact hash map +
wildcard trie), so forwarding one PUBLISH costs O(topic segments)
regardless of session count; deliveries produced within a batch are
coalesced per subscriber so one wakeup emits grouped PUBLISHes under a
single retry timer instead of N interleaved send/retry cycles.

QoS 2 is honoured in both roles: as receiver from publishers
(PUBREC/PUBREL/PUBCOMP with duplicate suppression) and as sender towards
subscribers (retransmission with DUP until PUBREC, then PUBREL until
PUBCOMP).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..calibration import SERVER_COSTS
from ..net import Endpoint, Host
from ..simkernel import Counter
from . import packets as pkt
from .topics import SubscriptionIndex, TopicRegistry

__all__ = ["MqttSnBroker", "DEFAULT_BROKER_PORT"]

DEFAULT_BROKER_PORT = 1883


@dataclass
class _Session:
    """Broker-side state for one connected client."""

    endpoint: Endpoint
    client_id: str
    inbound_qos2: Set[int] = field(default_factory=set)
    #: topic ids this client can resolve (REGACKed or learned via its own
    #: REGISTER/SUBSCRIBE); others need a broker-side REGISTER first.
    known_topic_ids: Set[int] = field(default_factory=set)
    msg_ids: itertools.cycle = field(default_factory=lambda: itertools.cycle(range(1, 0x10000)))


class _OutboundQos2:
    """Broker-as-sender exactly-once delivery state."""

    __slots__ = ("message", "dest", "state")

    def __init__(self, message: pkt.Publish, dest: Endpoint):
        self.message = message
        self.dest = dest
        self.state = "published"


class MqttSnBroker:
    """An MQTT-SN broker bound to one host/port.

    Standalone by default: binds its own UDP port and routes through its
    own :class:`SubscriptionIndex`.  A :class:`~repro.mqttsn.cluster.
    BrokerCluster` instead hands each shard a pre-bound socket facade, a
    routing index that replicates into the cluster's shared view, and a
    ``relay`` for deliveries owed to subscribers homed on other shards
    (``relay.stage()`` per forwarded PUBLISH, ``relay.flush()`` once per
    service batch so cross-shard deliveries coalesce like local ones).
    """

    def __init__(
        self,
        host: Host,
        port: int = DEFAULT_BROKER_PORT,
        service_time_s: float = SERVER_COSTS.broker_per_packet_s,
        batch_fixed_s: float = SERVER_COSTS.broker_batch_fixed_s,
        max_batch: int = 64,
        retry_interval_s: float = 1.0,
        max_retries: int = 5,
        *,
        sock=None,
        subscriptions: Optional[SubscriptionIndex] = None,
        relay=None,
    ):
        self.host = host
        self.env = host.env
        self.port = port
        self.service_time_s = service_time_s
        self.batch_fixed_s = batch_fixed_s
        self.max_batch = max(1, max_batch)
        self.retry_interval_s = retry_interval_s
        self.max_retries = max_retries
        self.relay = relay

        self.sock = sock if sock is not None else host.udp_socket(port)
        self.topics = TopicRegistry()
        self.sessions: Dict[Endpoint, _Session] = {}
        self.subscriptions = (
            subscriptions if subscriptions is not None else SubscriptionIndex()
        )
        self._outbound: Dict[Tuple[Endpoint, int], _OutboundQos2] = {}
        #: deliveries coalesced within the current service batch, grouped
        #: by the session that held the matching subscription (keyed by
        #: object identity — sessions replaced by a same-batch re-CONNECT
        #: keep their own group).  Flushing delivers every group with its
        #: own session's state, which matches the seed's dispatch-time
        #: delivery: the subscription was live when the PUBLISH arrived,
        #: so a later DISCONNECT in the same batch does not unsend it.
        self._batch_deliveries: Dict[
            int, Tuple[_Session, List[Tuple[str, pkt.Publish, int]]]
        ] = {}
        self.forwarded = Counter("forwarded-publishes")
        self.dropped_no_session = Counter("dropped-no-session")
        self.delivery_failures = Counter("delivery-failures")
        self.serviced_batches = Counter("serviced-batches")
        #: set when the service loop died (injected fault or real crash);
        #: retry timers and relay hops check it so a dead broker's leftover
        #: processes drain instead of sending through a closed socket
        self.crashed = False
        self._service = self.env.process(
            self._recv_loop(), name=f"mqttsn-broker-{host.name}:{port}"
        )

    @property
    def alive(self) -> bool:
        """True while the service loop is running (the liveness probe)."""
        return self._service.is_alive and not self.crashed

    def crash(self) -> None:
        """Kill the service loop (fault injection / failover testing).

        The broker object stays inspectable — sessions, counters, QoS
        state — but services nothing further; a cluster's watchdog
        detects the dead shard via :attr:`alive` and fails it over.
        """
        if not self._service.is_alive:
            self.crashed = True
            return
        self.crashed = True
        # nobody waits on the service process: defuse the failure so the
        # injected interrupt cannot crash the whole simulation
        self._service.defused = True
        self._service.interrupt("broker crash")
        if hasattr(self.sock, "close"):
            self.sock.close()

    # ------------------------------------------------------------------ loop
    def _recv_loop(self):
        while True:
            batch = [(yield self.sock.recv())]
            if self.max_batch > 1:
                batch.extend(self.sock.recv_pending(self.max_batch - 1))
            service = self.batch_fixed_s + self.service_time_s * len(batch)
            if service > 0:
                yield self.env.timeout(service)
            self.serviced_batches.record(len(batch))
            for data, source in batch:
                try:
                    message = pkt.decode(data)
                except pkt.MalformedPacket:
                    continue
                self._dispatch(message, source)
            if self._batch_deliveries:
                self._flush_deliveries()
            if self.relay is not None:
                self.relay.flush(self)

    def _send(self, message: pkt.MqttSnMessage, dest: Endpoint) -> None:
        self.sock.sendto(message.encode(), dest)

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, message: pkt.MqttSnMessage, source: Endpoint) -> None:
        if isinstance(message, pkt.Connect):
            # a fresh CONNECT replaces any previous session state,
            # including its subscriptions in the routing index
            self.subscriptions.remove(source)
            self.sessions[source] = _Session(endpoint=source, client_id=message.client_id)
            self._send(pkt.Connack(return_code=pkt.RC_ACCEPTED), source)
            return

        session = self.sessions.get(source)
        if session is None:
            # Not connected: only CONNECT is acceptable. Everything else
            # is dropped (the RSMB behaviour for unknown peers).
            self.dropped_no_session.record()
            return

        if isinstance(message, pkt.Register):
            try:
                topic_id = self.topics.register(message.topic_name)
            except ValueError:
                self._send(
                    pkt.Regack(
                        topic_id=0, msg_id=message.msg_id,
                        return_code=pkt.RC_INVALID_TOPIC,
                    ),
                    source,
                )
                return
            session.known_topic_ids.add(topic_id)
            self._send(
                pkt.Regack(topic_id=topic_id, msg_id=message.msg_id), source
            )
            return

        if isinstance(message, pkt.Regack):
            # client acknowledged a broker-initiated topic registration
            if message.return_code == pkt.RC_ACCEPTED:
                session.known_topic_ids.add(message.topic_id)
            return

        if isinstance(message, pkt.Subscribe):
            try:
                # add() validates the filter; one parse, one rejection path
                self.subscriptions.add(source, message.topic_name, message.qos)
            except ValueError:
                self._send(
                    pkt.Suback(
                        topic_id=0, msg_id=message.msg_id,
                        return_code=pkt.RC_INVALID_TOPIC,
                    ),
                    source,
                )
                return
            topic_id = 0
            if "+" not in message.topic_name and "#" not in message.topic_name:
                topic_id = self.topics.register(message.topic_name)
                session.known_topic_ids.add(topic_id)
            self._send(
                pkt.Suback(topic_id=topic_id, msg_id=message.msg_id, qos=message.qos),
                source,
            )
            return

        if isinstance(message, pkt.Publish):
            self._on_publish(message, session)
            return

        if isinstance(message, pkt.Pubrel):
            session.inbound_qos2.discard(message.msg_id)
            self._send(pkt.Pubcomp(msg_id=message.msg_id), source)
            return

        if isinstance(message, pkt.Pubrec):
            out = self._outbound.get((source, message.msg_id))
            if out is not None:
                out.state = "pubrel"
            self._send(pkt.Pubrel(msg_id=message.msg_id), source)
            return

        if isinstance(message, pkt.Pubcomp):
            self._outbound.pop((source, message.msg_id), None)
            return

        if isinstance(message, pkt.Puback):
            self._outbound.pop((source, message.msg_id), None)
            return

        if isinstance(message, pkt.Pingreq):
            self._send(pkt.Pingresp(), source)
            return

        if isinstance(message, pkt.Disconnect):
            self._send(pkt.Disconnect(), source)
            self.subscriptions.remove(source)
            self.sessions.pop(source, None)
            return

    # ------------------------------------------------------------- publishing
    def _on_publish(self, message: pkt.Publish, session: _Session) -> None:
        source = session.endpoint
        if message.qos == 1:
            self._send(
                pkt.Puback(topic_id=message.topic_id, msg_id=message.msg_id), source
            )
        elif message.qos == 2:
            self._send(pkt.Pubrec(msg_id=message.msg_id), source)
            if message.msg_id in session.inbound_qos2:
                return  # duplicate: exactly-once suppression
            session.inbound_qos2.add(message.msg_id)

        topic_name = self.topics.name_of(message.topic_id)
        if topic_name is None:
            return  # unknown topic id: RSMB drops the message
        self._forward(topic_name, message)

    def _forward(self, topic_name: str, message: pkt.Publish) -> None:
        """Route one PUBLISH through the subscription index.

        Deliveries are only *staged* here; the receive loop flushes them
        grouped per subscriber once the whole batch has been dispatched.
        """
        if self.relay is not None:
            # cluster mode: one match over the shared routing view covers
            # local and remote subscribers alike (the local index is a
            # strict subset, so matching both would double the hot-path
            # work); the relay stages local deliveries back through
            # _stage_delivery and buffers the rest for its batch flush
            self.relay.route(self, topic_name, message)
            return
        for endpoint, sub_qos in self.subscriptions.match(topic_name):
            session = self.sessions.get(endpoint)
            if session is None:
                continue
            self._stage_delivery(session, topic_name, message, min(message.qos, sub_qos))

    def _stage_delivery(
        self, session: _Session, topic_name: str, message: pkt.Publish, qos: int
    ) -> None:
        """Queue one delivery for the current batch's coalesced flush."""
        staged = self._batch_deliveries
        entry = staged.get(id(session))
        if entry is None:
            entry = (session, [])
            staged[id(session)] = entry
        entry[1].append((topic_name, message, qos))

    def _flush_deliveries(self) -> None:
        """Emit the batch's staged deliveries, grouped per subscriber."""
        staged = self._batch_deliveries
        self._batch_deliveries = {}
        for session, deliveries in staged.values():
            tracked: List[int] = []
            registered: Set[int] = set()
            for topic_name, message, qos in deliveries:
                msg_id = self._deliver(session, topic_name, message, qos, registered)
                if msg_id:
                    tracked.append(msg_id)
            if tracked:
                # one retry timer covers the whole coalesced group
                self.env.process(
                    self._retry_outbound(session.endpoint, tracked, 0),
                    name="broker-qos-retry",
                )

    def _deliver(
        self,
        session: _Session,
        topic_name: str,
        message: pkt.Publish,
        qos: int,
        registered: Set[int],
    ) -> int:
        """Send one PUBLISH towards ``session``; returns the msg id the
        grouped retry timer must track (0 for QoS 0).

        ``registered`` collects the topic ids already REGISTERed within
        the current flush group — the REGACK cannot arrive mid-flush, so
        one REGISTER per unresolved topic per group is enough."""
        topic_id = self.topics.register(topic_name)
        if topic_id not in session.known_topic_ids and topic_id not in registered:
            registered.add(topic_id)
            # Wildcard subscribers cannot resolve this topic id yet: send a
            # broker-initiated REGISTER (spec §6.10) ahead of the PUBLISH.
            # Repeated until the client REGACKs, so a lost REGISTER only
            # costs the duplicate-suppressed retransmission round.
            self._send(
                pkt.Register(
                    topic_id=topic_id,
                    msg_id=next(session.msg_ids),
                    topic_name=topic_name,
                ),
                session.endpoint,
            )
        msg_id = next(session.msg_ids) if qos > 0 else 0
        out_message = pkt.Publish(
            topic_id=topic_id, msg_id=msg_id, payload=message.payload, qos=qos
        )
        self.forwarded.record(len(message.payload))
        self._send(out_message, session.endpoint)
        if qos > 0:
            out = _OutboundQos2(out_message, session.endpoint)
            self._outbound[(session.endpoint, msg_id)] = out
        return msg_id

    def _retry_outbound(self, dest: Endpoint, msg_ids: List[int], attempt: int):
        """Retry timer for one coalesced delivery group towards ``dest``."""
        yield self.env.timeout(self.retry_interval_s)
        if self.crashed:
            return  # broker died with the timer armed; nothing to retry
        outstanding = [m for m in msg_ids if (dest, m) in self._outbound]
        if not outstanding:
            return
        if attempt >= self.max_retries:
            for msg_id in outstanding:
                del self._outbound[(dest, msg_id)]
                self.delivery_failures.record()
            return  # subscriber unreachable: give up, counted above
        for msg_id in outstanding:
            out = self._outbound[(dest, msg_id)]
            if out.state == "pubrel":
                self._send(pkt.Pubrel(msg_id=msg_id), dest)
            else:
                out.message.dup = True
                self._send(out.message, dest)
        self.env.process(
            self._retry_outbound(dest, outstanding, attempt + 1),
            name="broker-qos-retry",
        )

    def __repr__(self) -> str:
        return f"<MqttSnBroker {self.host.name}:{self.port} sessions={len(self.sessions)}>"
