"""MQTT-SN broker in the style of Eclipse RSMB (Really Small Message
Broker), which the paper's ProvLight server embeds.

Single receive loop over one UDP port; per-datagram service time models
the broker's (small) processing cost and creates realistic queueing when
64 devices publish concurrently (paper Table IX).  QoS 2 is honoured in
both roles: as receiver from publishers (PUBREC/PUBREL/PUBCOMP with
duplicate suppression) and as sender towards subscribers (retransmission
with DUP until PUBREC, then PUBREL until PUBCOMP).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..calibration import SERVER_COSTS
from ..net import Endpoint, Host
from ..simkernel import Counter
from . import packets as pkt
from .topics import TopicRegistry, topic_matches, validate_filter

__all__ = ["MqttSnBroker", "DEFAULT_BROKER_PORT"]

DEFAULT_BROKER_PORT = 1883


@dataclass
class _Session:
    """Broker-side state for one connected client."""

    endpoint: Endpoint
    client_id: str
    subscriptions: List[Tuple[str, int]] = field(default_factory=list)  # (filter, qos)
    inbound_qos2: Set[int] = field(default_factory=set)
    #: topic ids this client can resolve (REGACKed or learned via its own
    #: REGISTER/SUBSCRIBE); others need a broker-side REGISTER first.
    known_topic_ids: Set[int] = field(default_factory=set)
    msg_ids: itertools.cycle = field(default_factory=lambda: itertools.cycle(range(1, 0x10000)))


class _OutboundQos2:
    """Broker-as-sender exactly-once delivery state."""

    __slots__ = ("message", "dest", "state")

    def __init__(self, message: pkt.Publish, dest: Endpoint):
        self.message = message
        self.dest = dest
        self.state = "published"


class MqttSnBroker:
    """An MQTT-SN broker bound to one host/port."""

    def __init__(
        self,
        host: Host,
        port: int = DEFAULT_BROKER_PORT,
        service_time_s: float = SERVER_COSTS.broker_per_packet_s,
        retry_interval_s: float = 1.0,
        max_retries: int = 5,
    ):
        self.host = host
        self.env = host.env
        self.port = port
        self.service_time_s = service_time_s
        self.retry_interval_s = retry_interval_s
        self.max_retries = max_retries

        self.sock = host.udp_socket(port)
        self.topics = TopicRegistry()
        self.sessions: Dict[Endpoint, _Session] = {}
        self._outbound: Dict[Tuple[Endpoint, int], _OutboundQos2] = {}
        self.forwarded = Counter("forwarded-publishes")
        self.dropped_no_session = Counter("dropped-no-session")
        self.env.process(self._recv_loop(), name=f"mqttsn-broker-{host.name}:{port}")

    # ------------------------------------------------------------------ loop
    def _recv_loop(self):
        while True:
            data, source = yield self.sock.recv()
            if self.service_time_s > 0:
                yield self.env.timeout(self.service_time_s)
            try:
                message = pkt.decode(data)
            except pkt.MalformedPacket:
                continue
            self._dispatch(message, source)

    def _send(self, message: pkt.MqttSnMessage, dest: Endpoint) -> None:
        self.sock.sendto(message.encode(), dest)

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, message: pkt.MqttSnMessage, source: Endpoint) -> None:
        if isinstance(message, pkt.Connect):
            self.sessions[source] = _Session(endpoint=source, client_id=message.client_id)
            self._send(pkt.Connack(return_code=pkt.RC_ACCEPTED), source)
            return

        session = self.sessions.get(source)
        if session is None:
            # Not connected: only CONNECT is acceptable. Everything else
            # is dropped (the RSMB behaviour for unknown peers).
            self.dropped_no_session.record()
            return

        if isinstance(message, pkt.Register):
            try:
                topic_id = self.topics.register(message.topic_name)
            except ValueError:
                self._send(
                    pkt.Regack(
                        topic_id=0, msg_id=message.msg_id,
                        return_code=pkt.RC_INVALID_TOPIC,
                    ),
                    source,
                )
                return
            session.known_topic_ids.add(topic_id)
            self._send(
                pkt.Regack(topic_id=topic_id, msg_id=message.msg_id), source
            )
            return

        if isinstance(message, pkt.Regack):
            # client acknowledged a broker-initiated topic registration
            if message.return_code == pkt.RC_ACCEPTED:
                session.known_topic_ids.add(message.topic_id)
            return

        if isinstance(message, pkt.Subscribe):
            try:
                validate_filter(message.topic_name)
            except ValueError:
                self._send(
                    pkt.Suback(
                        topic_id=0, msg_id=message.msg_id,
                        return_code=pkt.RC_INVALID_TOPIC,
                    ),
                    source,
                )
                return
            session.subscriptions.append((message.topic_name, message.qos))
            topic_id = 0
            if "+" not in message.topic_name and "#" not in message.topic_name:
                topic_id = self.topics.register(message.topic_name)
                session.known_topic_ids.add(topic_id)
            self._send(
                pkt.Suback(topic_id=topic_id, msg_id=message.msg_id, qos=message.qos),
                source,
            )
            return

        if isinstance(message, pkt.Publish):
            self._on_publish(message, session)
            return

        if isinstance(message, pkt.Pubrel):
            session.inbound_qos2.discard(message.msg_id)
            self._send(pkt.Pubcomp(msg_id=message.msg_id), source)
            return

        if isinstance(message, pkt.Pubrec):
            out = self._outbound.get((source, message.msg_id))
            if out is not None:
                out.state = "pubrel"
            self._send(pkt.Pubrel(msg_id=message.msg_id), source)
            return

        if isinstance(message, pkt.Pubcomp):
            self._outbound.pop((source, message.msg_id), None)
            return

        if isinstance(message, pkt.Puback):
            self._outbound.pop((source, message.msg_id), None)
            return

        if isinstance(message, pkt.Pingreq):
            self._send(pkt.Pingresp(), source)
            return

        if isinstance(message, pkt.Disconnect):
            self._send(pkt.Disconnect(), source)
            self.sessions.pop(source, None)
            return

    # ------------------------------------------------------------- publishing
    def _on_publish(self, message: pkt.Publish, session: _Session) -> None:
        source = session.endpoint
        if message.qos == 1:
            self._send(
                pkt.Puback(topic_id=message.topic_id, msg_id=message.msg_id), source
            )
        elif message.qos == 2:
            self._send(pkt.Pubrec(msg_id=message.msg_id), source)
            if message.msg_id in session.inbound_qos2:
                return  # duplicate: exactly-once suppression
            session.inbound_qos2.add(message.msg_id)

        topic_name = self.topics.name_of(message.topic_id)
        if topic_name is None:
            return  # unknown topic id: RSMB drops the message
        self._forward(topic_name, message)

    def _forward(self, topic_name: str, message: pkt.Publish) -> None:
        for session in list(self.sessions.values()):
            for pattern, sub_qos in session.subscriptions:
                if topic_matches(pattern, topic_name):
                    self._deliver(session, topic_name, message, min(message.qos, sub_qos))
                    break  # one delivery per client even with overlapping subs

    def _deliver(
        self, session: _Session, topic_name: str, message: pkt.Publish, qos: int
    ) -> None:
        topic_id = self.topics.register(topic_name)
        if topic_id not in session.known_topic_ids:
            # Wildcard subscribers cannot resolve this topic id yet: send a
            # broker-initiated REGISTER (spec §6.10) ahead of the PUBLISH.
            # Repeated until the client REGACKs, so a lost REGISTER only
            # costs the duplicate-suppressed retransmission round.
            self._send(
                pkt.Register(
                    topic_id=topic_id,
                    msg_id=next(session.msg_ids),
                    topic_name=topic_name,
                ),
                session.endpoint,
            )
        msg_id = next(session.msg_ids) if qos > 0 else 0
        out_message = pkt.Publish(
            topic_id=topic_id, msg_id=msg_id, payload=message.payload, qos=qos
        )
        self.forwarded.record(len(message.payload))
        self._send(out_message, session.endpoint)
        if qos > 0:
            out = _OutboundQos2(out_message, session.endpoint)
            self._outbound[(session.endpoint, msg_id)] = out
            self.env.process(self._retry_outbound(session.endpoint, msg_id, 0))

    def _retry_outbound(self, dest: Endpoint, msg_id: int, attempt: int):
        yield self.env.timeout(self.retry_interval_s)
        out = self._outbound.get((dest, msg_id))
        if out is None:
            return
        if attempt >= self.max_retries:
            del self._outbound[(dest, msg_id)]
            return  # subscriber unreachable: give up (logged via counter)
        if out.state == "pubrel":
            self._send(pkt.Pubrel(msg_id=msg_id), dest)
        else:
            out.message.dup = True
            self._send(out.message, dest)
        self.env.process(self._retry_outbound(dest, msg_id, attempt + 1))

    def __repr__(self) -> str:
        return f"<MqttSnBroker {self.host.name}:{self.port} sessions={len(self.sessions)}>"
