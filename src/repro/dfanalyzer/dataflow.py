"""Dataflow specifications: DfAnalyzer's prospective provenance model.

A *dataflow* is a named pipeline of *transformations*, each consuming and
producing *datasets* with declared attributes.  The paper's Provenance
Manager uses these specifications to "visualize dataflow specifications
(i.e., data attributes of each dataset)" — here they also validate
ingested tasks against the declared pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["AttributeSpec", "DatasetSpec", "TransformationSpec", "DataflowSpec"]


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of a dataset."""

    name: str
    dtype: str = "numeric"  # "numeric" | "text" | "list"

    def validates(self, value) -> bool:
        if value is None:
            return True
        if self.dtype == "numeric":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.dtype == "text":
            return isinstance(value, str)
        if self.dtype == "list":
            return isinstance(value, (list, tuple))
        return True


@dataclass
class DatasetSpec:
    """A named dataset with typed attributes."""

    tag: str
    attributes: List[AttributeSpec] = field(default_factory=list)

    def attribute(self, name: str) -> Optional[AttributeSpec]:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def validate_elements(self, elements: Dict) -> List[str]:
        """Return a list of violations ([] when clean)."""
        problems = []
        for key, value in elements.items():
            spec = self.attribute(key)
            if spec is None:
                problems.append(f"undeclared attribute {key!r} in dataset {self.tag!r}")
            elif not spec.validates(value):
                problems.append(
                    f"attribute {key!r} of dataset {self.tag!r} is not {spec.dtype}"
                )
        return problems


@dataclass
class TransformationSpec:
    """A processing step: input and output dataset tags."""

    tag: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)


class DataflowSpec:
    """A full dataflow: transformations plus dataset schemas."""

    def __init__(self, tag: str):
        self.tag = tag
        self.transformations: Dict[str, TransformationSpec] = {}
        self.datasets: Dict[str, DatasetSpec] = {}

    # -- construction -------------------------------------------------------
    def add_dataset(self, tag: str, attributes: Sequence[tuple] = ()) -> DatasetSpec:
        """``attributes`` is a sequence of (name, dtype) pairs."""
        if tag in self.datasets:
            raise ValueError(f"dataset {tag!r} already declared")
        spec = DatasetSpec(tag, [AttributeSpec(n, t) for n, t in attributes])
        self.datasets[tag] = spec
        return spec

    def add_transformation(
        self, tag: str, inputs: Sequence[str] = (), outputs: Sequence[str] = ()
    ) -> TransformationSpec:
        if tag in self.transformations:
            raise ValueError(f"transformation {tag!r} already declared")
        for ds in list(inputs) + list(outputs):
            if ds not in self.datasets:
                raise ValueError(f"transformation {tag!r} references unknown dataset {ds!r}")
        spec = TransformationSpec(tag, list(inputs), list(outputs))
        self.transformations[tag] = spec
        return spec

    # -- inspection -----------------------------------------------------------
    def transformation(self, tag: str) -> TransformationSpec:
        spec = self.transformations.get(tag)
        if spec is None:
            raise KeyError(f"dataflow {self.tag!r} has no transformation {tag!r}")
        return spec

    def dataset(self, tag: str) -> DatasetSpec:
        spec = self.datasets.get(tag)
        if spec is None:
            raise KeyError(f"dataflow {self.tag!r} has no dataset {tag!r}")
        return spec

    def describe(self) -> Dict:
        """The structure DfAnalyzer's web UI renders."""
        return {
            "dataflow": self.tag,
            "transformations": [
                {"tag": t.tag, "inputs": list(t.inputs), "outputs": list(t.outputs)}
                for t in self.transformations.values()
            ],
            "datasets": [
                {
                    "tag": d.tag,
                    "attributes": [
                        {"name": a.name, "type": a.dtype} for a in d.attributes
                    ],
                }
                for d in self.datasets.values()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<DataflowSpec {self.tag} transformations={len(self.transformations)} "
            f"datasets={len(self.datasets)}>"
        )
