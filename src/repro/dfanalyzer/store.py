"""Columnar in-memory store (MonetDB-lite).

DfAnalyzer stores provenance in MonetDB, a column store.  This module
provides the minimal column-organized storage engine the backend needs:
append-only tables with dynamic schemas, column projections backed by
plain lists (converted to NumPy arrays on demand for aggregation), and
row reconstruction for query results.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

import numpy as np

__all__ = ["Table", "ColumnStore", "StoreError"]


class StoreError(KeyError):
    """Unknown table or column."""


class Table:
    """An append-only, column-organized table with a dynamic schema."""

    def __init__(self, name: str, columns: Optional[Iterable[str]] = None):
        self.name = name
        self._columns: Dict[str, List[Any]] = {c: [] for c in (columns or ())}
        self._nrows = 0

    # -- schema ------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self._nrows

    def _ensure_column(self, name: str) -> List[Any]:
        col = self._columns.get(name)
        if col is None:
            # backfill new columns with NULLs for existing rows
            col = self._columns[name] = [None] * self._nrows
        return col

    # -- writes ---------------------------------------------------------------
    def insert(self, row: Dict[str, Any]) -> int:
        """Append one row; unknown columns are added, missing are NULL.

        Returns the row id (position).
        """
        for name in row:
            self._ensure_column(name)
        for name, col in self._columns.items():
            col.append(row.get(name))
        self._nrows += 1
        return self._nrows - 1

    def insert_many(self, rows: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def update_where(self, predicate, changes: Dict[str, Any]) -> int:
        """Update rows matching ``predicate(row_dict)``; returns count."""
        for name in changes:
            self._ensure_column(name)
        updated = 0
        for i in range(self._nrows):
            if predicate(self.row(i)):
                for name, value in changes.items():
                    self._columns[name][i] = value
                updated += 1
        return updated

    # -- reads -----------------------------------------------------------------
    def column(self, name: str) -> List[Any]:
        col = self._columns.get(name)
        if col is None:
            raise StoreError(f"table {self.name!r} has no column {name!r}")
        return col

    def column_array(self, name: str) -> np.ndarray:
        """Column as a NumPy array (for vectorized aggregation)."""
        return np.asarray(self.column(name))

    def row(self, index: int) -> Dict[str, Any]:
        if not 0 <= index < self._nrows:
            raise IndexError(f"row {index} out of range (n={self._nrows})")
        return {name: col[index] for name, col in self._columns.items()}

    def rows(self) -> Iterator[Dict[str, Any]]:
        for i in range(self._nrows):
            yield self.row(i)

    def __repr__(self) -> str:
        return f"<Table {self.name} rows={self._nrows} cols={len(self._columns)}>"


class ColumnStore:
    """A named collection of tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Optional[Iterable[str]] = None) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise StoreError(f"no table {name!r}")
        return table

    def ensure_table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            table = self.create_table(name)
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise StoreError(f"no table {name!r}")
        del self._tables[name]

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __repr__(self) -> str:
        return f"<ColumnStore tables={len(self._tables)}>"
