"""The paper's provenance queries, as reusable functions.

Section I motivates provenance capture with two analysis queries over
Federated Learning training:

* (i) "What are the elapsed time and the training loss in the latest
  epoch for each hyperparameter combination?"
* (ii) "Retrieve the hyperparameters which obtained the 3 best accuracy
  values for model m."

Both are implemented here against a :class:`DfAnalyzerService`, with the
metric/hyperparameter column names parameterized so the same queries work
for any captured workload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .ingestion import DfAnalyzerService

__all__ = [
    "top_k_by_metric",
    "latest_epoch_metrics",
    "task_durations",
    "lineage_of",
]


def top_k_by_metric(
    service: DfAnalyzerService,
    dataflow_tag: str,
    metric: str,
    hyperparameters: Sequence[str],
    k: int = 3,
    dataset_tag: str | None = None,
) -> List[Dict[str, Any]]:
    """Paper query (ii): hyperparameters of the k best ``metric`` values."""
    q = service.query("datasets").where("dataflow_tag", "==", dataflow_tag)
    if dataset_tag is not None:
        q = q.where("dataset_tag", "==", dataset_tag)
    q = q.where_fn(lambda row: row.get(metric) is not None)
    q = q.order_by(metric, desc=True).limit(k)
    return q.select(*hyperparameters, metric).rows()


def latest_epoch_metrics(
    service: DfAnalyzerService,
    dataflow_tag: str,
    hyperparameters: Sequence[str],
    epoch_column: str = "epoch",
    metrics: Sequence[str] = ("elapsed_time", "loss"),
) -> List[Dict[str, Any]]:
    """Paper query (i): per hyperparameter combination, the metrics of the
    latest epoch."""
    rows = (
        service.query("datasets")
        .where("dataflow_tag", "==", dataflow_tag)
        .where_fn(lambda row: row.get(epoch_column) is not None)
        # only rows that actually carry at least one requested metric
        # (input datasets share the epoch column but have no metrics)
        .where_fn(lambda row: any(row.get(m) is not None for m in metrics))
        .rows()
    )
    latest: Dict[tuple, Dict[str, Any]] = {}
    for row in rows:
        key = tuple(row.get(h) for h in hyperparameters)
        current = latest.get(key)
        if current is None or row[epoch_column] > current[epoch_column]:
            latest[key] = row
    out = []
    for key, row in sorted(latest.items(), key=lambda kv: str(kv[0])):
        result = dict(zip(hyperparameters, key))
        result[epoch_column] = row[epoch_column]
        for metric in metrics:
            result[metric] = row.get(metric)
        out.append(result)
    return out


def task_durations(service: DfAnalyzerService, dataflow_tag: str) -> List[Dict[str, Any]]:
    """Elapsed wall time of every finished task (runtime steering view)."""
    rows = (
        service.query("tasks")
        .where("dataflow_tag", "==", dataflow_tag)
        .where("status", "==", "FINISHED")
        .rows()
    )
    out = []
    for row in rows:
        begin, end = row.get("time_begin"), row.get("time_end")
        duration = None
        if isinstance(begin, (int, float)) and isinstance(end, (int, float)):
            duration = end - begin
        out.append(
            {
                "task_id": row["task_id"],
                "transformation": row.get("transformation_tag"),
                "duration": duration,
            }
        )
    return out


def lineage_of(
    service: DfAnalyzerService, dataflow_tag: str, dataset_tag: str,
    max_depth: int = 100,
) -> List[str]:
    """Walk ``derivations`` backwards: where did this data come from?"""
    rows = (
        service.query("datasets")
        .where("dataflow_tag", "==", dataflow_tag)
        .rows()
    )
    by_tag = {row["dataset_tag"]: row for row in rows}
    chain: List[str] = []
    current = dataset_tag
    seen = set()
    for _ in range(max_depth):
        row = by_tag.get(current)
        if row is None:
            break
        derivations = [d for d in (row.get("derivations") or "").split(",") if d]
        if not derivations:
            break
        parent = derivations[0]
        if parent in seen:
            break  # defensive: cyclic lineage in malformed data
        seen.add(parent)
        chain.append(parent)
        current = parent
    return chain
