"""DfAnalyzer ingestion: runtime provenance intake into the column store.

Accepts both wire formats that exist in this reproduction:

* the ProvLight translator output (:func:`repro.core.translator.to_dfanalyzer`),
* the DfAnalyzer capture library's own JSON messages
  (:mod:`repro.baselines.dfanalyzer_capture`),

normalizing them into three storage families:

* ``dataflows`` — begin/end events per dataflow;
* ``tasks`` — one row per task, upserted RUNNING -> FINISHED;
* ``datasets`` — one row per data item with attribute columns, which is
  what the paper's hyperparameter queries run against.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from ..simkernel import Counter
from .dataflow import DataflowSpec
from .query import Query
from .store import ColumnStore

__all__ = ["DfAnalyzerService", "DfAnalyzerHttpService", "IngestError"]


class IngestError(ValueError):
    """Payload not recognized as DfAnalyzer provenance."""


class DfAnalyzerService:
    """The storage/query component of DfAnalyzer (paper Section V-A).

    The paper deliberately uses only this part of DfAnalyzer (its capture
    side is the slow baseline); ProvLight feeds it through the translator.
    """

    def __init__(self) -> None:
        self.store = ColumnStore()
        self.store.create_table(
            "dataflows", ["dataflow_tag", "event", "time"]
        )
        self.store.create_table(
            "tasks",
            [
                "dataflow_tag",
                "transformation_tag",
                "task_id",
                "status",
                "time_begin",
                "time_end",
                "dependencies",
            ],
        )
        self.store.create_table(
            "datasets",
            ["dataflow_tag", "task_id", "dataset_tag", "direction", "derivations"],
        )
        self.specs: Dict[str, DataflowSpec] = {}
        self.records_ingested = Counter("records")
        self.validation_warnings: List[str] = []

    # -- prospective provenance -----------------------------------------------
    def register_dataflow(self, spec: DataflowSpec) -> None:
        """Declare a dataflow specification (prospective provenance)."""
        self.specs[spec.tag] = spec

    # -- ingestion ---------------------------------------------------------------
    def ingest(self, payload: Union[Dict[str, Any], List[Dict[str, Any]]]) -> int:
        """Ingest one payload (translator batch or capture-lib message).

        Returns the number of records ingested.
        """
        records = self._normalize(payload)
        for record in records:
            if record["type"] == "dataflow":
                self.store.table("dataflows").insert(
                    {
                        "dataflow_tag": record["dataflow_tag"],
                        "event": record["event"],
                        "time": record.get("time"),
                    }
                )
            else:
                self._ingest_task(record)
            self.records_ingested.record()
        return len(records)

    def _ingest_task(self, record: Dict[str, Any]) -> None:
        tasks = self.store.table("tasks")
        key_df, key_task = record["dataflow_tag"], record["task_id"]
        status = record.get("status", "RUNNING")
        if status == "FINISHED":
            updated = tasks.update_where(
                lambda row: row["dataflow_tag"] == key_df and row["task_id"] == key_task,
                {"status": "FINISHED", "time_end": record.get("time")},
            )
            if not updated:  # end arrived before begin (grouping reorders)
                tasks.insert(
                    {
                        "dataflow_tag": key_df,
                        "transformation_tag": record.get("transformation_tag"),
                        "task_id": key_task,
                        "status": "FINISHED",
                        "time_end": record.get("time"),
                        "dependencies": ",".join(
                            str(d) for d in record.get("dependencies", ())
                        ),
                    }
                )
        else:
            tasks.insert(
                {
                    "dataflow_tag": key_df,
                    "transformation_tag": record.get("transformation_tag"),
                    "task_id": key_task,
                    "status": status,
                    "time_begin": record.get("time"),
                    "dependencies": ",".join(
                        str(d) for d in record.get("dependencies", ())
                    ),
                }
            )
        datasets = self.store.table("datasets")
        for item in record.get("datasets", ()):
            row = {
                "dataflow_tag": key_df,
                "task_id": key_task,
                "dataset_tag": item.get("tag"),
                "direction": item.get("direction"),
                "derivations": ",".join(str(d) for d in item.get("derivations", ())),
            }
            elements = item.get("elements", {})
            self._validate_elements(key_df, item.get("tag"), elements)
            for name, value in elements.items():
                row[name] = value
            datasets.insert(row)

    def _validate_elements(self, dataflow_tag, dataset_tag, elements) -> None:
        spec = self.specs.get(str(dataflow_tag))
        if spec is None:
            return
        ds = spec.datasets.get(str(dataset_tag))
        if ds is None:
            return
        self.validation_warnings.extend(ds.validate_elements(elements))

    # -- format normalization -----------------------------------------------------
    def _normalize(self, payload) -> List[Dict[str, Any]]:
        if isinstance(payload, dict) and "messages" in payload:
            return [self._from_capture_message(m) for m in payload["messages"]]
        if isinstance(payload, dict):
            payload = [payload]
        if not isinstance(payload, list):
            raise IngestError(f"unsupported payload type {type(payload).__name__}")
        out = []
        for record in payload:
            if not isinstance(record, dict):
                raise IngestError("records must be dicts")
            if "type" in record:
                out.append(record)  # translator format is native
            elif "object" in record:
                out.append(self._from_capture_message(record))
            else:
                raise IngestError(f"unrecognized record: {sorted(record)[:5]}")
        return out

    @staticmethod
    def _from_capture_message(message: Dict[str, Any]) -> Dict[str, Any]:
        obj = message.get("object")
        if obj == "dataflow":
            return {
                "type": "dataflow",
                "dataflow_tag": message["dataflow_tag"],
                "event": message.get("event"),
                "time": message.get("timestamp"),
            }
        if obj != "task":
            raise IngestError(f"unknown message object {obj!r}")
        status = message.get("status", "RUNNING")
        return {
            "type": "task",
            "dataflow_tag": message["dataflow_tag"],
            "transformation_tag": message.get("transformation_tag"),
            "task_id": message.get("id"),
            "status": status,
            "dependencies": message.get("dependency", {}).get("tags", []),
            "time": message.get("performance", {}).get("time"),
            "datasets": [
                {
                    "tag": item.get("tag"),
                    "direction": "input" if status == "RUNNING" else "output",
                    "derivations": item.get("dependency", []),
                    "elements": (item.get("elements") or [{}])[0],
                }
                for item in message.get("sets", ())
            ],
        }

    # -- queries ------------------------------------------------------------------
    def query(self, table: str) -> Query:
        """Start a :class:`~repro.dfanalyzer.query.Query` on a table."""
        return Query(self.store, table)

    def dataflow_summary(self, dataflow_tag: str) -> Dict[str, Any]:
        """Run-time view: task counts by status for one dataflow."""
        rows = self.query("tasks").where("dataflow_tag", "==", dataflow_tag).rows()
        by_status: Dict[str, int] = {}
        for row in rows:
            by_status[row["status"]] = by_status.get(row["status"], 0) + 1
        return {
            "dataflow": dataflow_tag,
            "tasks": len(rows),
            "by_status": by_status,
            "spec": self.specs.get(dataflow_tag).describe()
            if dataflow_tag in self.specs
            else None,
        }


class DfAnalyzerHttpService:
    """RESTful facade: POST JSON provenance to ``/pde``-style endpoints."""

    def __init__(self, host, port: int, service: DfAnalyzerService, workers: int = 8):
        from ..http import HttpResponse, HttpServer

        self.service = service

        def handler(request):
            if request.method != "POST":
                return HttpResponse(status=405, reason="Method Not Allowed")
            try:
                payload = json.loads(request.body.decode() or "null")
                count = self.service.ingest(payload)
            except (ValueError, IngestError) as exc:
                return HttpResponse(status=400, reason="Bad Request",
                                    body=str(exc).encode())
            return HttpResponse(status=201, reason="Created",
                                body=json.dumps({"ingested": count}).encode())

        self.server = HttpServer(host, port, handler, workers=workers)

    @property
    def endpoint(self):
        return (self.server.host.name, self.server.port)
