"""DfAnalyzer-style provenance backend: columnar storage, dataflow
specifications, runtime ingestion (in-process and RESTful) and a query
engine including the paper's FL analysis queries.

The paper uses only DfAnalyzer's storage/query components (its capture
side is a baseline); the E2Clab Provenance Manager wires ProvLight's
translator output into this service.
"""

from .dataflow import AttributeSpec, DataflowSpec, DatasetSpec, TransformationSpec
from .ingestion import DfAnalyzerHttpService, DfAnalyzerService, IngestError
from .queries import lineage_of, latest_epoch_metrics, task_durations, top_k_by_metric
from .query import AGGREGATES, Query, QueryError
from .store import ColumnStore, StoreError, Table

__all__ = [
    "ColumnStore",
    "Table",
    "StoreError",
    "Query",
    "QueryError",
    "AGGREGATES",
    "DataflowSpec",
    "DatasetSpec",
    "TransformationSpec",
    "AttributeSpec",
    "DfAnalyzerService",
    "DfAnalyzerHttpService",
    "IngestError",
    "top_k_by_metric",
    "latest_epoch_metrics",
    "task_durations",
    "lineage_of",
]
