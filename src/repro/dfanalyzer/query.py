"""Query engine over the column store.

Covers what the paper's use cases need (Sections I and VII-B): filter,
project, join, order/limit and grouped aggregation — enough to answer
"retrieve the hyperparameters with the 3 best accuracy values" or "the
elapsed time and training loss in the latest epoch for each
hyperparameter combination" against captured provenance.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .store import ColumnStore, Table

__all__ = ["Query", "QueryError", "AGGREGATES"]

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda value, container: value in container,
    "contains": lambda container, value: value in container,
}

AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": len,
    "sum": lambda xs: float(np.sum(xs)) if xs else 0.0,
    "mean": lambda xs: float(np.mean(xs)) if xs else float("nan"),
    "min": lambda xs: min(xs),
    "max": lambda xs: max(xs),
    "first": lambda xs: xs[0],
    "last": lambda xs: xs[-1],
}


class QueryError(ValueError):
    """Invalid query construction."""


class Query:
    """A lazily evaluated query pipeline; evaluate with :meth:`rows`.

    Example::

        (Query(store, "tasks")
            .where("status", "==", "FINISHED")
            .join("metrics", on=("task_id", "task_id"))
            .order_by("accuracy", desc=True)
            .limit(3)
            .rows())
    """

    def __init__(self, store: ColumnStore, table: str):
        self.store = store
        self._table = table
        self._stages: List[Tuple[str, tuple]] = []

    # -- builders (each returns self for chaining) ----------------------------
    def where(self, column: str, op: str, value: Any) -> "Query":
        if op not in _OPS:
            raise QueryError(f"unknown operator {op!r}; known: {sorted(_OPS)}")
        self._stages.append(("where", (column, op, value)))
        return self

    def where_fn(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Query":
        self._stages.append(("where_fn", (predicate,)))
        return self

    def select(self, *columns: str) -> "Query":
        if not columns:
            raise QueryError("select needs at least one column")
        self._stages.append(("select", (columns,)))
        return self

    def join(self, table: str, on: Tuple[str, str], prefix: str = "") -> "Query":
        """Inner hash join: ``on=(left_column, right_column)``.

        Columns from the right table may be prefixed to avoid collisions.
        """
        self._stages.append(("join", (table, on, prefix)))
        return self

    def order_by(self, column: str, desc: bool = False) -> "Query":
        self._stages.append(("order_by", (column, desc)))
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise QueryError("limit must be >= 0")
        self._stages.append(("limit", (n,)))
        return self

    def group_by(self, *columns: str, aggregate: Dict[str, Tuple[str, str]]) -> "Query":
        """Group rows and aggregate: ``aggregate={"out": ("fn", "col")}``.

        e.g. ``group_by("lr", aggregate={"best_acc": ("max", "accuracy")})``.
        """
        for out, (fn, _col) in aggregate.items():
            if fn not in AGGREGATES:
                raise QueryError(f"unknown aggregate {fn!r} for {out!r}")
        self._stages.append(("group_by", (columns, aggregate)))
        return self

    # -- evaluation -----------------------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        data = list(self.store.table(self._table).rows())
        for stage, args in self._stages:
            data = getattr(self, f"_eval_{stage}")(data, *args)
        return data

    def scalars(self, column: str) -> List[Any]:
        """Shortcut: the values of one column of the result."""
        return [row[column] for row in self.rows()]

    def count(self) -> int:
        return len(self.rows())

    # -- stage implementations ---------------------------------------------------
    @staticmethod
    def _eval_where(data, column, op, value):
        fn = _OPS[op]
        out = []
        for row in data:
            cell = row.get(column)
            if cell is None:
                continue
            try:
                if fn(cell, value):
                    out.append(row)
            except TypeError:
                continue  # incomparable cell: excluded, like SQL NULL
        return out

    @staticmethod
    def _eval_where_fn(data, predicate):
        return [row for row in data if predicate(row)]

    @staticmethod
    def _eval_select(data, columns):
        return [{c: row.get(c) for c in columns} for row in data]

    def _eval_join(self, data, table, on, prefix):
        left_col, right_col = on
        right_table: Table = self.store.table(table)
        index: Dict[Any, List[Dict[str, Any]]] = {}
        for row in right_table.rows():
            index.setdefault(row.get(right_col), []).append(row)
        out = []
        for row in data:
            for match in index.get(row.get(left_col), ()):
                merged = dict(row)
                for key, value in match.items():
                    merged[f"{prefix}{key}"] = value
                out.append(merged)
        return out

    @staticmethod
    def _eval_order_by(data, column, desc):
        def key(row):
            value = row.get(column)
            # sort NULLs last regardless of direction
            return (value is None, value)

        return sorted(data, key=key, reverse=desc)

    @staticmethod
    def _eval_limit(data, n):
        return data[:n]

    @staticmethod
    def _eval_group_by(data, columns, aggregate):
        groups: Dict[tuple, List[Dict[str, Any]]] = {}
        for row in data:
            key = tuple(row.get(c) for c in columns)
            groups.setdefault(key, []).append(row)
        out = []
        for key, rows in groups.items():
            result = dict(zip(columns, key))
            for out_name, (fn, col) in aggregate.items():
                values = [r.get(col) for r in rows if r.get(col) is not None]
                result[out_name] = AGGREGATES[fn](values) if (values or fn == "count") else None
            out.append(result)
        return out
