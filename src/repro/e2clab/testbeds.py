"""Simulated testbeds: Grid'5000, FIT IoT LAB and Chameleon.

E2Clab deploys services onto real testbeds; here each testbed model
provisions simulated :class:`~repro.device.Device` instances with the
hardware spec of the requested cluster/architecture and registers them
as network hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..device import A8M3, XEON_GOLD_5220, Device, DeviceSpec
from ..net import Network

__all__ = ["Testbed", "TESTBEDS", "testbed_by_name", "ProvisionError"]


class ProvisionError(RuntimeError):
    """The testbed cannot satisfy the resource request."""


@dataclass(frozen=True)
class Testbed:
    """A named testbed with per-cluster device specs and capacity."""

    name: str
    clusters: Dict[str, DeviceSpec]
    default_cluster: str
    #: maximum devices per provisioning request (site capacity)
    capacity: int = 1024

    def spec_for(self, cluster: Optional[str] = None, arch: Optional[str] = None) -> DeviceSpec:
        key = arch or cluster or self.default_cluster
        spec = self.clusters.get(key)
        if spec is None:
            raise ProvisionError(
                f"testbed {self.name!r} has no cluster/arch {key!r}; "
                f"available: {sorted(self.clusters)}"
            )
        return spec

    def provision(
        self,
        network: Network,
        count: int,
        name_prefix: str,
        cluster: Optional[str] = None,
        arch: Optional[str] = None,
    ) -> List[Device]:
        """Create ``count`` devices and attach them to the network."""
        if count <= 0:
            raise ProvisionError(f"count must be positive, got {count}")
        if count > self.capacity:
            raise ProvisionError(
                f"testbed {self.name!r} capacity is {self.capacity}, requested {count}"
            )
        spec = self.spec_for(cluster, arch)
        devices = []
        for i in range(count):
            host_name = f"{name_prefix}-{i}" if count > 1 else name_prefix
            device = Device(network.env, spec, name=host_name)
            network.add_host(host_name, device=device)
            devices.append(device)
        return devices


#: Grid'5000: cloud/HPC clusters (the paper uses Nancy's "gros").
GRID5000 = Testbed(
    name="g5k",
    clusters={"gros": XEON_GOLD_5220, "paravance": XEON_GOLD_5220},
    default_cluster="gros",
    capacity=124,
)

#: FIT IoT LAB: IoT boards (the paper uses Grenoble's A8-M3 nodes).
FIT_IOT_LAB = Testbed(
    name="iotlab",
    clusters={"a8": A8M3, "grenoble": A8M3, "saclay": A8M3},
    default_cluster="a8",
    capacity=256,
)

#: Chameleon Cloud (supported by E2Clab; same class as Grid'5000 here).
CHAMELEON = Testbed(
    name="chameleon",
    clusters={"skylake": XEON_GOLD_5220},
    default_cluster="skylake",
    capacity=64,
)

TESTBEDS: Dict[str, Testbed] = {
    t.name: t for t in (GRID5000, FIT_IOT_LAB, CHAMELEON)
}


def testbed_by_name(name: str) -> Testbed:
    testbed = TESTBEDS.get(name)
    if testbed is None:
        raise KeyError(f"unknown testbed {name!r}; known: {sorted(TESTBEDS)}")
    return testbed
