"""The Provenance Manager: the paper's E2Clab extension (Section V).

Enabling ``provenance: ProvenanceManager`` in the environment config
deploys, on a cloud host:

* the ProvLight server (MQTT-SN broker + provenance data translators),
* the DfAnalyzer storage/query service as backend,

and hands out capture clients for edge devices — one topic per device as
in the paper's Fig. 5, sharded across the server's fixed-size translator
worker pool.  Clients are built through the unified capture API
(:func:`repro.capture.create_client`), so the transport is a deployment
choice: the manager-wide default comes from the ``transport=`` argument
or the ``REPRO_CAPTURE_TRANSPORT`` environment hook (so an operator can
retarget a whole experiment campaign without touching driver code), and
:meth:`deploy_client` can override it per device.  The matching capture
sink (CoAP server, HTTP collector) is deployed on demand next to the
MQTT-SN server.

The manager also exposes the DfAnalyzer query interface so users can
analyze captured provenance at workflow runtime.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..capture import (
    CaptureClient,
    CaptureConfig,
    create_client,
    deploy_capture_sink,
    normalize_transport,
)
from ..core import (
    DEFAULT_BROKER_SHARDS,
    DEFAULT_TRANSLATOR_WORKERS,
    CallableBackend,
    ProvLightServer,
)
from ..device import Device, XEON_GOLD_5220
from ..dfanalyzer import DfAnalyzerService
from ..net import (
    ChaosProfile,
    ContinuumTopology,
    Network,
    ServerFaultInjector,
    TopologySpec,
)
from ..simkernel import Environment

__all__ = ["ProvenanceManager"]

#: port of the manager's blocking-HTTP capture collector
HTTP_CAPTURE_PORT = 5000


def _default_capture_transport() -> str:
    """Manager-wide transport; ``REPRO_CAPTURE_TRANSPORT`` overrides.

    The environment hook is what lets a deployment retarget every
    ``deploy_client`` call (MQTT-SN vs CoAP vs blocking HTTP) without
    threading an argument through each driver.  Unknown names fail
    loudly here, at the first ``ProvenanceManager()``.
    """
    value = os.environ.get("REPRO_CAPTURE_TRANSPORT")
    if not value:
        return "mqttsn"
    from ..capture import transport_names

    canonical = normalize_transport(value)
    if canonical not in transport_names():
        raise ValueError(
            f"REPRO_CAPTURE_TRANSPORT={value!r} is not a registered capture "
            f"transport; known: {', '.join(transport_names())}"
        )
    return canonical


class ProvenanceManager:
    """Deploys and owns the provenance capture pipeline."""

    #: host name used when the manager provisions its own cloud node
    HOST_NAME = "provenance-manager"

    def __init__(
        self,
        network: Network,
        target: str = "dfanalyzer",
        group_size: int = 0,
        compress: bool = True,
        host_name: Optional[str] = None,
        translator_workers: int = DEFAULT_TRANSLATOR_WORKERS,
        broker_shards: int = DEFAULT_BROKER_SHARDS,
        broker_placement: str = "hash",
        pool_min: Optional[int] = None,
        pool_max: Optional[int] = None,
        transport: Optional[str] = None,
        chaos: Optional[str] = None,
        topology: Optional[str] = None,
    ):
        chaos_profile = ChaosProfile.parse(chaos) if chaos else None
        topology_spec = TopologySpec.parse(topology) if topology else None
        if chaos_profile is not None:
            # validate before any side effect (host provisioning, port
            # binds), so a bad config leaves the network untouched
            if chaos_profile.requires_backend_link():
                raise ValueError(
                    "the manager's DfAnalyzer backend is in-process (no "
                    "server<->backend link); backend-outage/flap-backend "
                    "events cannot be injected here"
                )
            if (
                any(e.kind == "kill-shard" for e in chaos_profile.events)
                and broker_shards < 2
            ):
                raise ValueError(
                    "kill-shard chaos needs broker_shards >= 2 (a surviving "
                    "shard must take over the killed shard's sessions)"
                )
            if chaos_profile.requires_fleet():
                raise ValueError(
                    "the manager does not own the device lifecycle, so "
                    "crash-device/churn events cannot be injected here; "
                    "drive them through the harness "
                    "(run_capture_experiment) or a FleetFaultInjector "
                    "built over the deployed clients"
                )
            if chaos_profile.requires_topology() and topology_spec is None:
                raise ValueError(
                    "partition-tier/degrade-tier chaos events need "
                    "topology= (a TopologySpec string or preset name)"
                )
        self.network = network
        self.env: Environment = network.env
        self.target = target
        self.group_size = group_size
        self.compress = compress
        self.transport = normalize_transport(transport) if transport else (
            _default_capture_transport()
        )
        self.service = DfAnalyzerService()
        host_name = host_name or self.HOST_NAME
        if host_name in network.hosts:
            host = network.hosts[host_name]
        else:
            device = Device(self.env, XEON_GOLD_5220, name=host_name)
            host = network.add_host(host_name, device=device)
        self.host = host
        # the bounds express the elastic envelope; clamp the static
        # default worker count into it rather than refusing to deploy
        if pool_min is not None:
            translator_workers = max(translator_workers, pool_min)
        if pool_max is not None:
            translator_workers = min(translator_workers, pool_max)
        self.server = ProvLightServer(
            host, CallableBackend(self.service.ingest), target=target,
            workers=translator_workers, broker_shards=broker_shards,
            broker_placement=broker_placement,
            pool_min=pool_min, pool_max=pool_max,
        )
        #: lazily deployed non-MQTT-SN sinks: transport -> (server, endpoint)
        self._sinks: Dict[str, tuple] = {}
        self.clients: Dict[str, CaptureClient] = {}
        #: the tiered continuum rooted at the manager host, when the
        #: deployment asked for one (``topology=``); device hosts are
        #: created bare — attach devices with :meth:`place_device`
        self.topology: Optional[ContinuumTopology] = None
        if topology_spec is not None:
            self.topology = ContinuumTopology(
                network, topology_spec, root_host=self.host.name
            )
        #: server-plane fault injector (always available for manual chaos)
        self.fault_injector = ServerFaultInjector(self.server, network=network)
        if chaos_profile is not None:
            chaos_profile.apply(self.fault_injector, topology=self.topology)

    @property
    def host_name(self) -> str:
        return self.host.name

    def capture_config(self, transport: Optional[str] = None) -> CaptureConfig:
        """The config handed to every deployed capture client."""
        return CaptureConfig(
            transport=normalize_transport(transport) if transport else self.transport,
            group_size=self.group_size,
            compress=self.compress,
        )

    def place_device(self, device: Device, tier: Optional[str] = None) -> str:
        """Attach ``device`` to the next free host of the topology's
        leaf tier (or of ``tier``); returns the host name.

        The manager's ``topology=`` builds the tiered network with bare
        forwarding hosts; experiment drivers place their devices here
        and then :meth:`deploy_client` them as usual.
        """
        if self.topology is None:
            raise ValueError(
                "place_device needs a topology= deployment (the star "
                "layout attaches devices through network.add_host)"
            )
        tier = tier or self.topology.spec.leaf.name
        for host_name in self.topology.hosts_in(tier):
            host = self.network.hosts[host_name]
            if host.device is None:
                host.device = device
                device.host = host
                return host_name
        raise ValueError(
            f"no free host left in tier {tier!r} "
            f"({len(self.topology.hosts_in(tier))} hosts, all occupied)"
        )

    def deploy_client(self, device: Device, topic: Optional[str] = None,
                      transport: Optional[str] = None):
        """Generator: create a capture client for ``device`` plus its
        dedicated translator (paper Fig. 5: topic-i / translator-i).

        ``transport`` overrides the manager-wide default for this one
        client; the matching sink is provisioned on first use.
        """
        topic = topic or f"provlight/{device.name}/data"
        if topic in self.clients:
            raise ValueError(f"topic {topic!r} already has a capture client")
        config = self.capture_config(transport)
        endpoint = yield from self._ensure_sink(config.transport, topic)
        client = create_client(device, endpoint, topic, config)
        yield from client.setup()
        self.clients[topic] = client
        return client

    def _ensure_sink(self, transport: str, topic: str):
        """Generator: endpoint of the capture sink for ``transport``,
        deploying it on the manager host the first time it is needed."""
        if transport == "mqttsn":
            yield from self.server.add_translator(topic)  # shards onto the pool
            return self.server.endpoint
        if transport not in self._sinks:
            self._sinks[transport] = deploy_capture_sink(
                transport, self.host, self.service.ingest, target=self.target,
                http_port=HTTP_CAPTURE_PORT,
            )
        _, endpoint = self._sinks[transport]
        return endpoint

    def connect_layer_to_server(self, hosts: List[str], bandwidth_bps: float,
                                latency_s: float) -> None:
        """Ensure device hosts can reach the provenance host."""
        for host in hosts:
            try:
                self.network.link(host, self.host_name)
            except KeyError:
                self.network.connect(
                    host, self.host_name,
                    bandwidth_bps=bandwidth_bps, latency_s=latency_s,
                )

    # -- analysis passthrough (DfAnalyzer's role in the paper) ---------------
    def query(self, table: str):
        """Start a query on the captured provenance."""
        return self.service.query(table)

    def dataflow_summary(self, dataflow_tag: str):
        return self.service.dataflow_summary(dataflow_tag)

    @property
    def records_ingested(self) -> int:
        return int(self.service.records_ingested.count)

    def __repr__(self) -> str:
        return (
            f"<ProvenanceManager target={self.target} host={self.host_name} "
            f"transport={self.transport} clients={len(self.clients)}>"
        )
