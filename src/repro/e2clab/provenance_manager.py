"""The Provenance Manager: the paper's E2Clab extension (Section V).

Enabling ``provenance: ProvenanceManager`` in the environment config
deploys, on a cloud host:

* the ProvLight server (MQTT-SN broker + provenance data translators),
* the DfAnalyzer storage/query service as backend,

and hands out ProvLight capture clients for edge devices — one topic per
device as in the paper's Fig. 5, sharded across the server's fixed-size
translator worker pool.  The manager also
exposes the DfAnalyzer query interface so users can analyze captured
provenance at workflow runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import (
    DEFAULT_BROKER_SHARDS,
    DEFAULT_TRANSLATOR_WORKERS,
    CallableBackend,
    ProvLightClient,
    ProvLightServer,
)
from ..device import Device, XEON_GOLD_5220
from ..dfanalyzer import DfAnalyzerService
from ..net import Network
from ..simkernel import Environment

__all__ = ["ProvenanceManager"]


class ProvenanceManager:
    """Deploys and owns the provenance capture pipeline."""

    #: host name used when the manager provisions its own cloud node
    HOST_NAME = "provenance-manager"

    def __init__(
        self,
        network: Network,
        target: str = "dfanalyzer",
        group_size: int = 0,
        compress: bool = True,
        host_name: Optional[str] = None,
        translator_workers: int = DEFAULT_TRANSLATOR_WORKERS,
        broker_shards: int = DEFAULT_BROKER_SHARDS,
    ):
        self.network = network
        self.env: Environment = network.env
        self.target = target
        self.group_size = group_size
        self.compress = compress
        self.service = DfAnalyzerService()
        host_name = host_name or self.HOST_NAME
        if host_name in network.hosts:
            host = network.hosts[host_name]
        else:
            device = Device(self.env, XEON_GOLD_5220, name=host_name)
            host = network.add_host(host_name, device=device)
        self.host = host
        self.server = ProvLightServer(
            host, CallableBackend(self.service.ingest), target=target,
            workers=translator_workers, broker_shards=broker_shards,
        )
        self.clients: Dict[str, ProvLightClient] = {}

    @property
    def host_name(self) -> str:
        return self.host.name

    def deploy_client(self, device: Device, topic: Optional[str] = None):
        """Generator: create a capture client for ``device`` plus its
        dedicated translator (paper Fig. 5: topic-i / translator-i)."""
        topic = topic or f"provlight/{device.name}/data"
        if topic in self.clients:
            raise ValueError(f"topic {topic!r} already has a capture client")
        yield from self.server.add_translator(topic)  # shards onto the pool
        client = ProvLightClient(
            device,
            self.server.endpoint,
            topic,
            group_size=self.group_size,
            compress=self.compress,
        )
        yield from client.setup()
        self.clients[topic] = client
        return client

    def connect_layer_to_server(self, hosts: List[str], bandwidth_bps: float,
                                latency_s: float) -> None:
        """Ensure device hosts can reach the provenance host."""
        for host in hosts:
            try:
                self.network.link(host, self.host_name)
            except KeyError:
                self.network.connect(
                    host, self.host_name,
                    bandwidth_bps=bandwidth_bps, latency_s=latency_s,
                )

    # -- analysis passthrough (DfAnalyzer's role in the paper) ---------------
    def query(self, table: str):
        """Start a query on the captured provenance."""
        return self.service.query(table)

    def dataflow_summary(self, dataflow_tag: str):
        return self.service.dataflow_summary(dataflow_tag)

    @property
    def records_ingested(self) -> int:
        return int(self.service.records_ingested.count)

    def __repr__(self) -> str:
        return (
            f"<ProvenanceManager target={self.target} host={self.host_name} "
            f"clients={len(self.clients)}>"
        )
