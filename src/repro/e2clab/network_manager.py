"""Network manager: apply layer-to-layer constraints to the simulation.

E2Clab's network manager drives ``tc netem`` on real testbeds; here each
rule (``src`` layer -> ``dst`` layer, rate/delay/jitter/loss) becomes a
set of simulated duplex links between the layers' hosts, created or
reconfigured through :mod:`repro.net.netem`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..net import Network, NetworkConstraint, apply_constraints
from .config import NetworkConfig
from .layers import LayersServicesManager

__all__ = ["NetworkManager"]


class NetworkManager:
    """Applies :class:`NetworkConfig` rules between deployed layers."""

    def __init__(self, network: Network, layers: LayersServicesManager):
        self.network = network
        self.layers = layers
        self.applied: List[Tuple[str, str]] = []

    def apply(self, config: NetworkConfig) -> List[Tuple[str, str]]:
        """Create/configure links for every rule; returns host pairs."""
        constraints = []
        for rule in config.rules:
            src_hosts = self.layers.layer_hosts(rule.src)
            dst_hosts = self.layers.layer_hosts(rule.dst)
            if not src_hosts:
                raise KeyError(f"network rule references empty layer {rule.src!r}")
            if not dst_hosts:
                raise KeyError(f"network rule references empty layer {rule.dst!r}")
            constraints.append(
                NetworkConstraint(
                    src=src_hosts,
                    dst=dst_hosts,
                    rate=rule.rate,
                    delay=rule.delay,
                    jitter=rule.jitter,
                    loss=rule.loss,
                )
            )
        configured = apply_constraints(self.network, constraints)
        self.applied.extend(configured)
        return configured

    def reconfigure(self, src_layer: str, dst_layer: str, **params) -> int:
        """Change an existing layer pair at runtime (netem-style).

        Accepts ``bandwidth_bps``, ``latency_s``, ``jitter_s``, ``loss``;
        returns the number of host pairs touched.
        """
        count = 0
        for src in self.layers.layer_hosts(src_layer):
            for dst in self.layers.layer_hosts(dst_layer):
                self.network.configure_link(src, dst, **params)
                count += 1
        if count == 0:
            raise KeyError(f"no links between layers {src_layer!r} and {dst_layer!r}")
        return count
