"""Workflow manager: bind configured workloads to deployed services.

A workload is registered under a name and instantiated from the workflow
config's ``parameters`` mapping.  Two shapes exist:

* *per-device* workloads run once on every device of the selected
  services (synthetic, sensors, imaging);
* *group* workloads run once with all selected devices together
  (federated learning needs every client in one training loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..workloads import (
    FederatedConfig,
    ImagingConfig,
    SensorConfig,
    SyntheticWorkloadConfig,
    federated_training,
    imaging_pipeline,
    sensor_pipeline,
    synthetic_workload,
)

__all__ = ["WorkloadSpec", "WorkflowManager", "UnknownWorkload"]


class UnknownWorkload(KeyError):
    """The workflow config references an unregistered workload."""


@dataclass(frozen=True)
class WorkloadSpec:
    """A registered workload factory."""

    name: str
    #: per-device: fn(env, capture_client, parameters, result) -> generator
    #: group: fn(env, capture_clients, parameters, result) -> generator
    factory: Callable
    group: bool = False


def _synthetic(env, capture_client, parameters: Dict[str, Any], result: Dict):
    params = dict(parameters)
    seed = int(params.pop("seed", 0))
    config = SyntheticWorkloadConfig(**params)
    return synthetic_workload(
        env, capture_client, config,
        rng=np.random.default_rng(seed), result=result,
    )


def _sensors(env, capture_client, parameters: Dict[str, Any], result: Dict):
    return sensor_pipeline(env, capture_client, SensorConfig(**parameters), result)


def _imaging(env, capture_client, parameters: Dict[str, Any], result: Dict):
    return imaging_pipeline(env, capture_client, ImagingConfig(**parameters), result)


def _federated(env, capture_clients, parameters: Dict[str, Any], result: Dict):
    params = dict(parameters)
    params.setdefault("n_clients", len(capture_clients))
    return federated_training(env, capture_clients, FederatedConfig(**params), result)


class WorkflowManager:
    """Registry + instantiation of workloads."""

    def __init__(self) -> None:
        self._specs: Dict[str, WorkloadSpec] = {}
        for spec in (
            WorkloadSpec("synthetic", _synthetic),
            WorkloadSpec("sensors", _sensors),
            WorkloadSpec("imaging", _imaging),
            WorkloadSpec("federated", _federated, group=True),
        ):
            self.register(spec)

    def register(self, spec: WorkloadSpec) -> None:
        """Register (or replace) a workload by name."""
        self._specs[spec.name] = spec

    def register_function(self, name: str, factory: Callable, group: bool = False) -> None:
        self.register(WorkloadSpec(name, factory, group=group))

    def spec(self, name: str) -> WorkloadSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise UnknownWorkload(
                f"unknown workload {name!r}; registered: {sorted(self._specs)}"
            )
        return spec

    @property
    def names(self) -> List[str]:
        return sorted(self._specs)

    def instantiate(
        self,
        name: str,
        env,
        capture_clients: List[Any],
        parameters: Optional[Dict[str, Any]] = None,
    ) -> List[tuple]:
        """Build the generator(s) for a workload over capture clients.

        Returns a list of ``(label, generator, result_dict)`` triples —
        one per device for per-device workloads, a single one for group
        workloads.
        """
        spec = self.spec(name)
        parameters = dict(parameters or {})
        if spec.group:
            result: Dict[str, Any] = {}
            return [(name, spec.factory(env, capture_clients, parameters, result), result)]
        out = []
        for i, client in enumerate(capture_clients):
            result = {}
            out.append(
                (f"{name}[{i}]", spec.factory(env, client, parameters, result), result)
            )
        return out
