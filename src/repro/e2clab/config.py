"""E2Clab configuration schema.

Three configuration files define an experiment (paper Fig. 2/Listing 2):

* ``layers_services.yaml`` — environment (testbeds, provenance manager)
  plus layers and the services on each layer;
* ``network.yaml`` — constraints between layers (rate/delay/loss);
* ``workflow.yaml`` — which workload each service runs, with parameters.

This module parses (mini-)YAML into validated dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from . import miniyaml

__all__ = [
    "ConfigError",
    "ServiceConfig",
    "LayerConfig",
    "EnvironmentConfig",
    "LayersServicesConfig",
    "NetworkConfig",
    "NetworkRule",
    "WorkflowEntry",
    "WorkflowConfig",
    "parse_layers_services",
    "parse_network",
    "parse_workflow",
]


class ConfigError(ValueError):
    """Invalid experiment configuration."""


@dataclass
class ServiceConfig:
    """One service deployment request on a layer."""

    name: str
    environment: str
    quantity: int = 1
    cluster: Optional[str] = None
    arch: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class LayerConfig:
    name: str
    services: List[ServiceConfig] = field(default_factory=list)

    def service(self, name: str) -> ServiceConfig:
        for svc in self.services:
            if svc.name == name:
                return svc
        raise KeyError(f"layer {self.name!r} has no service {name!r}")


@dataclass
class EnvironmentConfig:
    """Testbed bindings and global experiment settings."""

    testbeds: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    provenance: Optional[str] = None  # e.g. "ProvenanceManager"
    seed: int = 0


@dataclass
class LayersServicesConfig:
    environment: EnvironmentConfig
    layers: List[LayerConfig]

    def layer(self, name: str) -> LayerConfig:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer {name!r}")

    def all_services(self) -> List[tuple]:
        """(layer, service) pairs across all layers."""
        return [(layer, svc) for layer in self.layers for svc in layer.services]


@dataclass
class NetworkRule:
    """A constraint between two layers (maps to tc-netem on testbeds)."""

    src: str
    dst: str
    rate: str = "1Gbit"
    delay: str = "0ms"
    jitter: str = "0ms"
    loss: float = 0.0


@dataclass
class NetworkConfig:
    rules: List[NetworkRule] = field(default_factory=list)


@dataclass
class WorkflowEntry:
    """Binds a workload to the services of one layer."""

    hosts: str  # "<layer>.<service>" or "<layer>.*"
    workload: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    depends_on: List[str] = field(default_factory=list)


@dataclass
class WorkflowConfig:
    entries: List[WorkflowEntry] = field(default_factory=list)


def _as_mapping(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise ConfigError(f"{what} must be a mapping, got {type(value).__name__}")
    return value


def parse_layers_services(source: str | dict) -> LayersServicesConfig:
    """Parse a layers & services document (text or pre-parsed mapping)."""
    doc = miniyaml.loads(source) if isinstance(source, str) else source
    doc = _as_mapping(doc, "layers_services document")

    env_doc = _as_mapping(doc.get("environment", {}), "environment")
    known_env_keys = {"provenance", "seed"}
    testbeds: Dict[str, Dict[str, Any]] = {}
    for key, value in env_doc.items():
        if key in known_env_keys:
            continue
        testbeds[key] = _as_mapping(value if value is not None else {}, f"environment.{key}")
    environment = EnvironmentConfig(
        testbeds=testbeds,
        provenance=env_doc.get("provenance"),
        seed=int(env_doc.get("seed", 0)),
    )

    layers_doc = doc.get("layers")
    if not isinstance(layers_doc, list) or not layers_doc:
        raise ConfigError("layers must be a non-empty list")
    layers: List[LayerConfig] = []
    for layer_doc in layers_doc:
        layer_doc = _as_mapping(layer_doc, "layer entry")
        if "name" not in layer_doc:
            raise ConfigError("each layer needs a name")
        services: List[ServiceConfig] = []
        for svc_doc in layer_doc.get("services") or []:
            svc_doc = dict(_as_mapping(svc_doc, "service entry"))
            if "name" not in svc_doc:
                raise ConfigError(f"service in layer {layer_doc['name']!r} needs a name")
            if "environment" not in svc_doc:
                raise ConfigError(
                    f"service {svc_doc['name']!r} needs an environment (testbed)"
                )
            env_name = str(svc_doc.pop("environment"))
            if env_name not in testbeds:
                raise ConfigError(
                    f"service {svc_doc['name']!r} references unknown environment "
                    f"{env_name!r}; declared: {sorted(testbeds)}"
                )
            quantity = int(svc_doc.pop("qtd", svc_doc.pop("quantity", 1)))
            if quantity <= 0:
                raise ConfigError(f"service {svc_doc['name']!r} quantity must be >= 1")
            services.append(
                ServiceConfig(
                    name=str(svc_doc.pop("name")),
                    environment=env_name,
                    quantity=quantity,
                    cluster=svc_doc.pop("cluster", None),
                    arch=svc_doc.pop("arch", None),
                    extra=svc_doc,
                )
            )
        layers.append(LayerConfig(name=str(layer_doc["name"]), services=services))

    names = [l.name for l in layers]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate layer names in {names}")
    return LayersServicesConfig(environment=environment, layers=layers)


def parse_network(source: str | dict | list) -> NetworkConfig:
    """Parse a network-constraints document."""
    doc = miniyaml.loads(source) if isinstance(source, str) else source
    if isinstance(doc, dict):
        doc = doc.get("networks", doc.get("rules"))
    if doc is None:
        return NetworkConfig(rules=[])
    if not isinstance(doc, list):
        raise ConfigError("network config must be a list of rules")
    rules = []
    for rule_doc in doc:
        rule_doc = _as_mapping(rule_doc, "network rule")
        try:
            src, dst = str(rule_doc["src"]), str(rule_doc["dst"])
        except KeyError as exc:
            raise ConfigError(f"network rule missing {exc.args[0]!r}") from None
        rules.append(
            NetworkRule(
                src=src,
                dst=dst,
                rate=str(rule_doc.get("rate", "1Gbit")),
                delay=str(rule_doc.get("delay", "0ms")),
                jitter=str(rule_doc.get("jitter", "0ms")),
                loss=float(rule_doc.get("loss", 0.0)),
            )
        )
    return NetworkConfig(rules=rules)


def parse_workflow(source: str | dict | list) -> WorkflowConfig:
    """Parse a workflow document."""
    doc = miniyaml.loads(source) if isinstance(source, str) else source
    if isinstance(doc, dict):
        doc = doc.get("workflow")
    if doc is None:
        return WorkflowConfig(entries=[])
    if not isinstance(doc, list):
        raise ConfigError("workflow config must be a list of entries")
    entries = []
    for entry_doc in doc:
        entry_doc = _as_mapping(entry_doc, "workflow entry")
        if "hosts" not in entry_doc or "workload" not in entry_doc:
            raise ConfigError("workflow entries need 'hosts' and 'workload'")
        hosts = str(entry_doc["hosts"])
        if "." not in hosts:
            raise ConfigError(
                f"hosts must be '<layer>.<service>' (or '<layer>.*'), got {hosts!r}"
            )
        depends = entry_doc.get("depends_on", [])
        if isinstance(depends, str):
            depends = [depends]
        entries.append(
            WorkflowEntry(
                hosts=hosts,
                workload=str(entry_doc["workload"]),
                parameters=_as_mapping(entry_doc.get("parameters", {}) or {}, "parameters"),
                depends_on=[str(d) for d in depends],
            )
        )
    return WorkflowConfig(entries=entries)
