"""E2Clab-style experiment framework (paper Sections II-C, V).

Configuration-driven deployment of Edge-to-Cloud experiments on simulated
testbeds: layers & services, network constraints, workflow execution, the
Provenance Manager (ProvLight + DfAnalyzer), and an optimization manager
— mirroring the architecture of the paper's Fig. 4.
"""

from . import miniyaml
from .config import (
    ConfigError,
    EnvironmentConfig,
    LayerConfig,
    LayersServicesConfig,
    NetworkConfig,
    NetworkRule,
    ServiceConfig,
    WorkflowConfig,
    WorkflowEntry,
    parse_layers_services,
    parse_network,
    parse_workflow,
)
from .experiment import Experiment, ExperimentResults
from .layers import DeployedService, LayersServicesManager
from .miniyaml import MiniYamlError, load_file, loads
from .network_manager import NetworkManager
from .optimizer import OptimizationManager, SearchSpace, Trial
from .provenance_manager import ProvenanceManager
from .testbeds import TESTBEDS, ProvisionError, Testbed, testbed_by_name
from .workflow_manager import UnknownWorkload, WorkflowManager, WorkloadSpec

__all__ = [
    "miniyaml",
    "loads",
    "load_file",
    "MiniYamlError",
    "ConfigError",
    "EnvironmentConfig",
    "LayerConfig",
    "LayersServicesConfig",
    "ServiceConfig",
    "NetworkConfig",
    "NetworkRule",
    "WorkflowConfig",
    "WorkflowEntry",
    "parse_layers_services",
    "parse_network",
    "parse_workflow",
    "Testbed",
    "TESTBEDS",
    "testbed_by_name",
    "ProvisionError",
    "LayersServicesManager",
    "DeployedService",
    "NetworkManager",
    "ProvenanceManager",
    "WorkflowManager",
    "WorkloadSpec",
    "UnknownWorkload",
    "Experiment",
    "ExperimentResults",
    "OptimizationManager",
    "SearchSpace",
    "Trial",
]
