"""Optimization manager: search over experiment configurations.

E2Clab's optimization manager explores configuration variants to optimize
workflow performance (paper Sections II-C and VII).  This is a compact,
dependency-free implementation of the same idea: a declarative parameter
space, grid or random search, and a history of evaluated points.

The objective is any callable ``params -> float`` (lower is better) —
typically a closure that deploys and runs an :class:`Experiment` with the
given parameters and returns the metric to minimize (e.g. capture
overhead, energy, makespan).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SearchSpace", "OptimizationManager", "Trial"]


@dataclass
class SearchSpace:
    """Declarative parameter space.

    * ``choices``: name -> explicit list of values (grid-able);
    * ``ranges``: name -> (low, high) continuous bounds (random search).
    """

    choices: Dict[str, Sequence[Any]] = field(default_factory=dict)
    ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.choices and not self.ranges:
            raise ValueError("empty search space")
        for name, values in self.choices.items():
            if len(values) == 0:
                raise ValueError(f"choice parameter {name!r} has no values")
        for name, (low, high) in self.ranges.items():
            if not low < high:
                raise ValueError(f"range parameter {name!r}: need low < high")

    def grid(self) -> Iterable[Dict[str, Any]]:
        """All combinations of the choice parameters (ranges excluded)."""
        if self.ranges:
            raise ValueError("grid search over continuous ranges is not defined")
        names = sorted(self.choices)
        for combo in itertools.product(*(self.choices[n] for n in names)):
            yield dict(zip(names, combo))

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        """One random point across choices and ranges."""
        point: Dict[str, Any] = {}
        for name in sorted(self.choices):
            values = self.choices[name]
            point[name] = values[int(rng.integers(len(values)))]
        for name in sorted(self.ranges):
            low, high = self.ranges[name]
            point[name] = float(rng.uniform(low, high))
        return point


@dataclass
class Trial:
    """One evaluated configuration."""

    params: Dict[str, Any]
    value: float
    index: int


class OptimizationManager:
    """Minimizes an objective over a search space."""

    def __init__(
        self,
        objective: Callable[[Dict[str, Any]], float],
        space: SearchSpace,
        mode: str = "grid",
        budget: Optional[int] = None,
        seed: int = 0,
    ):
        if mode not in ("grid", "random"):
            raise ValueError(f"mode must be 'grid' or 'random', got {mode!r}")
        space.validate()
        if mode == "random" and budget is None:
            raise ValueError("random search needs a budget")
        self.objective = objective
        self.space = space
        self.mode = mode
        self.budget = budget
        self.rng = np.random.default_rng(seed)
        self.history: List[Trial] = []

    def run(self) -> Trial:
        """Evaluate configurations; returns the best trial."""
        if self.mode == "grid":
            points: Iterable[Dict[str, Any]] = self.space.grid()
            if self.budget is not None:
                points = itertools.islice(points, self.budget)
        else:
            points = (self.space.sample(self.rng) for _ in range(self.budget))

        for params in points:
            value = float(self.objective(params))
            self.history.append(Trial(params=params, value=value,
                                      index=len(self.history)))
        if not self.history:
            raise RuntimeError("no configurations evaluated")
        return self.best()

    def best(self) -> Trial:
        if not self.history:
            raise RuntimeError("no trials yet")
        return min(self.history, key=lambda t: t.value)

    def as_table(self) -> List[Dict[str, Any]]:
        """History in a render-friendly shape."""
        return [
            {"trial": t.index, **t.params, "objective": t.value}
            for t in self.history
        ]
