"""A small YAML-subset parser for E2Clab configuration files.

The environment has no PyYAML, and E2Clab configs (paper Listing 2) only
use a disciplined subset, so this parser supports exactly that subset:

* mappings (``key: value``) nested by indentation;
* block lists (``- item``), where an item may be a scalar, an inline
  mapping (``- name: Server, environment: g5k, qtd: 1`` — the paper's
  style), or a nested block;
* flow lists (``[a, b, c]``);
* scalars: int, float, bool (true/false/yes/no), null (~/null), single-
  and double-quoted strings, bare strings;
* comments (``# ...``) and blank lines.

Anchors, multi-document streams, block scalars and flow mappings are out
of scope and raise :class:`MiniYamlError`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = ["loads", "load_file", "MiniYamlError"]


class MiniYamlError(ValueError):
    """Malformed mini-YAML input."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


class _Line:
    __slots__ = ("indent", "content", "number")

    def __init__(self, indent: int, content: str, number: int):
        self.indent = indent
        self.content = content
        self.number = number


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    quote = None
    for i, ch in enumerate(text):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or text[i - 1] in " \t"):
            return text[:i].rstrip()
    return text.rstrip()


def _tokenize(text: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise MiniYamlError("tabs are not allowed in indentation", number)
        content = _strip_comment(raw)
        if not content.strip():
            continue
        indent = len(content) - len(content.lstrip(" "))
        lines.append(_Line(indent, content.strip(), number))
    return lines


def _parse_scalar(token: str, line_no: int) -> Any:
    token = token.strip()
    if token == "":
        return None
    if token[0] in "'\"":
        if len(token) < 2 or token[-1] != token[0]:
            raise MiniYamlError(f"unterminated string {token!r}", line_no)
        return token[1:-1]
    if token.startswith("[") :
        if not token.endswith("]"):
            raise MiniYamlError(f"unterminated flow list {token!r}", line_no)
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part, line_no) for part in _split_top_level(inner)]
    if token.startswith("{") or token.startswith("&") or token.startswith("*"):
        raise MiniYamlError(f"unsupported YAML construct {token!r}", line_no)
    lowered = token.lower()
    if lowered in ("null", "~"):
        return None
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_top_level(text: str) -> List[str]:
    """Split on commas that are not inside quotes or brackets."""
    parts, depth, quote, start = [], 0, None, 0
    for i, ch in enumerate(text):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i].strip())
            start = i + 1
    parts.append(text[start:].strip())
    return [p for p in parts if p]


def _split_key(content: str, line_no: int) -> Tuple[str, str]:
    """Split ``key: rest`` respecting quoted keys."""
    if content.startswith(("'", '"')):
        quote = content[0]
        end = content.find(quote, 1)
        if end < 0 or not content[end + 1 :].lstrip().startswith(":"):
            raise MiniYamlError(f"malformed quoted key in {content!r}", line_no)
        key = content[1:end]
        rest = content[end + 1 :].lstrip()[1:]
        return key, rest.strip()
    idx = content.find(":")
    if idx < 0:
        raise MiniYamlError(f"expected 'key: value', got {content!r}", line_no)
    if idx + 1 < len(content) and content[idx + 1] not in " \t":
        # "a:b" without space is a plain scalar in YAML; we treat it as a
        # key only when a space (or end of line) follows the colon.
        raise MiniYamlError(f"missing space after ':' in {content!r}", line_no)
    return content[:idx].strip(), content[idx + 1 :].strip()


def _looks_like_inline_mapping(text: str) -> bool:
    if not text or text[0] in "'\"[{&*":
        # quoted scalars and explicit flow/anchor constructs are handled
        # (or rejected) by the scalar parser
        return False
    parts = _split_top_level(text)
    if not parts:
        # only separators (e.g. ","): not a mapping, let the scalar
        # parser deal with it
        return False
    first = parts[0]
    quote = None
    for i, ch in enumerate(first):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == ":":
            return i > 0 and (i + 1 == len(first) or first[i + 1] in " \t")
    return False


def _parse_inline_mapping(text: str, line_no: int) -> dict:
    result = {}
    for part in _split_top_level(text):
        key, rest = _split_key(part, line_no)
        result[key] = _parse_scalar(rest, line_no)
    return result


class _Parser:
    def __init__(self, lines: List[_Line]):
        self.lines = lines
        self.pos = 0

    def peek(self) -> Optional[_Line]:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent: int) -> Any:
        line = self.peek()
        if line is None:
            return None
        if line.content.startswith("- ") or line.content == "-":
            return self._parse_list(indent)
        return self._parse_mapping(indent)

    def _parse_list(self, indent: int) -> list:
        items: list = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return items
            if line.indent > indent:
                raise MiniYamlError("unexpected indentation", line.number)
            if not (line.content.startswith("- ") or line.content == "-"):
                return items
            body = line.content[2:].strip() if line.content != "-" else ""
            self.pos += 1
            if not body:
                # nested block under the dash
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    items.append(self.parse_block(nxt.indent))
                else:
                    items.append(None)
            elif _looks_like_inline_mapping(body):
                item = _parse_inline_mapping(body, line.number)
                # the mapping may continue on more-indented lines
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent and not nxt.content.startswith("- "):
                    deeper = self._parse_mapping(nxt.indent)
                    item.update(deeper)
                items.append(item)
            else:
                items.append(_parse_scalar(body, line.number))

    def _parse_mapping(self, indent: int) -> dict:
        result: dict = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return result
            if line.indent > indent:
                raise MiniYamlError("unexpected indentation", line.number)
            if line.content.startswith("- "):
                return result
            key, rest = _split_key(line.content, line.number)
            if key in result:
                raise MiniYamlError(f"duplicate key {key!r}", line.number)
            self.pos += 1
            if rest:
                if _looks_like_inline_mapping(rest):
                    # the paper's compact style: `g5k: cluster: gros` and
                    # `- name: Server, environment: g5k, qtd: 1`
                    result[key] = _parse_inline_mapping(rest, line.number)
                else:
                    result[key] = _parse_scalar(rest, line.number)
            else:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    result[key] = self.parse_block(nxt.indent)
                elif nxt is not None and nxt.indent == indent and (
                    nxt.content.startswith("- ")
                ):
                    result[key] = self._parse_list(indent)
                else:
                    result[key] = None


def loads(text: str) -> Any:
    """Parse a mini-YAML document into Python objects."""
    lines = _tokenize(text)
    if not lines:
        return None
    parser = _Parser(lines)
    value = parser.parse_block(lines[0].indent)
    trailing = parser.peek()
    if trailing is not None:
        raise MiniYamlError(
            f"unparsed content {trailing.content!r}", trailing.number
        )
    return value


def load_file(path) -> Any:
    """Parse a mini-YAML file."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())
