"""Experiment manager: the end-to-end E2Clab lifecycle.

``Experiment`` wires together the managers exactly as the paper's Fig. 4
describes: parse configs, provision layers & services on testbeds, apply
network constraints, optionally deploy the Provenance Manager, run the
configured workflows (respecting dependencies), and collect per-device
metrics plus captured provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..baselines import NullCaptureClient
from ..metrics import RunMetrics, snapshot_device
from ..net import Network, parse_delay, parse_rate
from ..simkernel import Environment
from .config import (
    ConfigError,
    LayersServicesConfig,
    NetworkConfig,
    WorkflowConfig,
    parse_layers_services,
    parse_network,
    parse_workflow,
)
from .layers import LayersServicesManager
from .network_manager import NetworkManager
from .provenance_manager import ProvenanceManager
from .workflow_manager import WorkflowManager

__all__ = ["Experiment", "ExperimentResults"]

#: link defaults used to connect devices to the provenance host when the
#: network config has no explicit rule covering it
_DEFAULT_PROV_BANDWIDTH = "1Gbit"
_DEFAULT_PROV_DELAY = "0.1ms"


@dataclass
class ExperimentResults:
    """Everything an experiment run produces."""

    elapsed: float
    entries: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    device_metrics: Dict[str, RunMetrics] = field(default_factory=dict)
    provenance_records: int = 0


class Experiment:
    """A configured, deployable, runnable Edge-to-Cloud experiment."""

    def __init__(
        self,
        layers_services: str | LayersServicesConfig,
        network: str | NetworkConfig | None = None,
        workflow: str | WorkflowConfig | None = None,
        workflow_manager: Optional[WorkflowManager] = None,
    ):
        self.layers_config = (
            layers_services
            if isinstance(layers_services, LayersServicesConfig)
            else parse_layers_services(layers_services)
        )
        self.network_config = (
            network if isinstance(network, NetworkConfig)
            else parse_network(network) if network is not None
            else NetworkConfig()
        )
        self.workflow_config = (
            workflow if isinstance(workflow, WorkflowConfig)
            else parse_workflow(workflow) if workflow is not None
            else WorkflowConfig()
        )
        self.workflows = workflow_manager or WorkflowManager()

        self.env: Optional[Environment] = None
        self.network: Optional[Network] = None
        self.layers: Optional[LayersServicesManager] = None
        self.network_manager: Optional[NetworkManager] = None
        self.provenance: Optional[ProvenanceManager] = None
        self._deployed = False

    # -- lifecycle ------------------------------------------------------------
    def deploy(self) -> "Experiment":
        """Provision the simulated infrastructure."""
        if self._deployed:
            raise RuntimeError("experiment already deployed")
        seed = self.layers_config.environment.seed
        self.env = Environment()
        self.network = Network(self.env, seed=seed)
        self.layers = LayersServicesManager(self.network)
        self.layers.deploy(self.layers_config)
        self.network_manager = NetworkManager(self.network, self.layers)
        self.network_manager.apply(self.network_config)

        if self.layers_config.environment.provenance:
            name = self.layers_config.environment.provenance
            if name != "ProvenanceManager":
                raise ConfigError(f"unknown provenance service {name!r}")
            self.provenance = ProvenanceManager(self.network)
            # make sure every device can reach the provenance host
            all_hosts = [
                h for svc in self.layers.all_services() for h in svc.host_names
            ]
            self.provenance.connect_layer_to_server(
                all_hosts,
                bandwidth_bps=parse_rate(_DEFAULT_PROV_BANDWIDTH),
                latency_s=parse_delay(_DEFAULT_PROV_DELAY),
            )
        self._deployed = True
        return self

    def run(self, until: Optional[float] = None, settle_s: float = 60.0) -> ExperimentResults:
        """Execute the configured workflows and collect results.

        ``settle_s`` extra simulated time lets asynchronous provenance
        messages drain after the last workflow finishes.
        """
        if not self._deployed:
            self.deploy()
        env, layers = self.env, self.layers
        assert env is not None and layers is not None

        entry_done: Dict[str, Any] = {}
        results: Dict[str, List[Dict[str, Any]]] = {}
        device_metrics: Dict[str, RunMetrics] = {}

        def run_entry(entry, done_event):
            # wait for dependencies
            for dep in entry.depends_on:
                if dep not in entry_done:
                    raise ConfigError(
                        f"workflow entry {entry.hosts!r} depends on unknown "
                        f"entry {dep!r}"
                    )
                yield entry_done[dep]
            services = layers.resolve(entry.hosts)
            devices = [d for svc in services for d in svc.devices]
            clients = []
            for device in devices:
                if self.provenance is not None:
                    client = yield from self.provenance.deploy_client(device)
                else:
                    client = NullCaptureClient(device)
                clients.append(client)
            for device in devices:
                device.reset_accounting()
            entry_start = env.now
            label_base = f"{entry.hosts}:{entry.workload}"
            jobs = self.workflows.instantiate(
                entry.workload, env, clients, entry.parameters
            )
            processes = [
                env.process(gen, name=f"{label_base}:{label}") for label, gen, _ in jobs
            ]
            yield env.all_of(processes)
            # snapshot device accounting at entry completion, before the
            # settle window dilutes rates and utilizations
            for device in devices:
                device_metrics[device.name] = snapshot_device(
                    device, env.now - entry_start
                )
            results[label_base] = [result for _, _, result in jobs]
            done_event.succeed()

        for entry in self.workflow_config.entries:
            key = f"{entry.hosts}:{entry.workload}"
            done = env.event()
            entry_done[key] = done
            env.process(run_entry(entry, done), name=f"entry:{key}")

        if until is not None:
            env.run(until=until)
        else:
            env.run()
            if settle_s > 0:
                env.run(until=env.now + settle_s)

        return ExperimentResults(
            elapsed=env.now,
            entries=results,
            device_metrics=device_metrics,
            provenance_records=(
                self.provenance.records_ingested if self.provenance else 0
            ),
        )
