"""Layers & Services manager: materialize configured services on testbeds.

Each service of quantity N becomes N simulated devices provisioned from
its testbed and attached to the experiment network, with host names
``<layer>-<service>-<i>`` (lowercased), e.g. ``edge-client-17``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..device import Device
from ..net import Network
from .config import LayerConfig, LayersServicesConfig, ServiceConfig
from .testbeds import testbed_by_name

__all__ = ["DeployedService", "LayersServicesManager"]


@dataclass
class DeployedService:
    """A service with its provisioned devices."""

    layer: str
    config: ServiceConfig
    devices: List[Device] = field(default_factory=list)

    @property
    def host_names(self) -> List[str]:
        return [d.name for d in self.devices]

    @property
    def key(self) -> Tuple[str, str]:
        return (self.layer, self.config.name)


class LayersServicesManager:
    """Deploys a :class:`LayersServicesConfig` onto a network."""

    def __init__(self, network: Network):
        self.network = network
        self._deployed: Dict[Tuple[str, str], DeployedService] = {}

    def deploy(self, config: LayersServicesConfig) -> List[DeployedService]:
        """Provision every service of every layer."""
        for layer in config.layers:
            for svc in layer.services:
                self._deploy_service(layer, svc)
        return list(self._deployed.values())

    def _deploy_service(self, layer: LayerConfig, svc: ServiceConfig) -> DeployedService:
        key = (layer.name, svc.name)
        if key in self._deployed:
            raise ValueError(f"service {key} already deployed")
        testbed = testbed_by_name(svc.environment)
        prefix = f"{layer.name}-{svc.name}".lower()
        devices = testbed.provision(
            self.network,
            svc.quantity,
            prefix,
            cluster=svc.cluster,
            arch=svc.arch,
        )
        deployed = DeployedService(layer=layer.name, config=svc, devices=devices)
        self._deployed[key] = deployed
        return deployed

    # -- lookups ------------------------------------------------------------
    def service(self, layer: str, name: str) -> DeployedService:
        try:
            return self._deployed[(layer, name)]
        except KeyError:
            raise KeyError(
                f"no deployed service {layer}.{name}; "
                f"deployed: {sorted(self._deployed)}"
            ) from None

    def layer_services(self, layer: str) -> List[DeployedService]:
        return [d for (l, _), d in self._deployed.items() if l == layer]

    def layer_hosts(self, layer: str) -> List[str]:
        return [h for svc in self.layer_services(layer) for h in svc.host_names]

    def resolve(self, selector: str) -> List[DeployedService]:
        """Resolve a ``layer.service`` selector (``layer.*`` for all)."""
        if "." not in selector:
            raise ValueError(f"selector must be 'layer.service', got {selector!r}")
        layer, _, name = selector.partition(".")
        if name in ("*", ""):
            services = self.layer_services(layer)
            if not services:
                raise KeyError(f"no services deployed on layer {layer!r}")
            return services
        return [self.service(layer, name)]

    def all_services(self) -> List[DeployedService]:
        return list(self._deployed.values())

    def __repr__(self) -> str:
        return f"<LayersServicesManager services={len(self._deployed)}>"
