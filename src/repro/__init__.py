"""Reproduction of *ProvLight: Efficient Workflow Provenance Capture on
the Edge-to-Cloud Continuum* (IEEE CLUSTER 2023).

Public API shortcuts re-export the capture model and the main entry
points; see the subpackages for the full surface:

* :mod:`repro.capture` — the unified capture API (``CaptureConfig`` +
  transport registry + ``CaptureClient`` façade over MQTT-SN, CoAP and
  blocking HTTP);
* :mod:`repro.core` — ProvLight itself (the paper's contribution);
* :mod:`repro.baselines` — ProvLake/DfAnalyzer-style capture baselines;
* :mod:`repro.dfanalyzer` — storage/query backend;
* :mod:`repro.e2clab` — experiment framework with the Provenance Manager;
* :mod:`repro.harness` — drivers for every paper table and figure;
* :mod:`repro.simkernel`, :mod:`repro.net`, :mod:`repro.mqttsn`,
  :mod:`repro.http`, :mod:`repro.device` — the simulated substrate.
"""

from .capture import CaptureClient, CaptureConfig, create_client
from .core import Data, ProvLightClient, ProvLightServer, Task, Workflow
from .device import A8M3, XEON_GOLD_5220, Device
from .net import Network
from .simkernel import Environment

__version__ = "1.0.0"

__all__ = [
    "Workflow",
    "Task",
    "Data",
    "CaptureClient",
    "CaptureConfig",
    "create_client",
    "ProvLightClient",
    "ProvLightServer",
    "Device",
    "A8M3",
    "XEON_GOLD_5220",
    "Network",
    "Environment",
    "__version__",
]
