"""Continuum chaos: a tiered edge fleet churns mid-run, nothing is lost.

Twelve devices sit behind the paper's worst evaluated uplink (25 Kbit/s,
23 ms — the ``constrained-edge`` topology preset), fanning durable
capture streams through a fog tier into a ProvLight server on the cloud
root.  Mid-run the chaos schedule — two spec strings, replayable from
any CLI — crashes a quarter of the fleet (in-memory state gone, WAL
journals intact) and then cuts the whole edge<->fog backhaul while some
of those restarts are still trying to come back.  Restarted incarnations
retry setup under backoff until the partition heals, replay their
journals, and the interrupted captures are retried by the fleet proxies:
the run asserts every record reaches the backend exactly once.

Run with:  python examples/continuum_chaos.py
"""

import shutil
import tempfile

from repro.capture import CaptureConfig, create_client
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.net import (
    ChaosProfile,
    ContinuumTopology,
    FleetFaultInjector,
    Network,
    TopologySpec,
)
from repro.simkernel import Environment

N_DEVICES = 12
N_TASKS = 4
RECORDS_PER_DEVICE = 2 + 2 * N_TASKS  # wf begin/end + task begin/end pairs

#: the whole run's fault plan, reproducible from these two strings
#: (the harness equivalent: --topology constrained-edge
#:  --chaos 'churn@1:0.25:1.5,partition-tier:edge-fog@2:1.5')
TOPOLOGY = "constrained-edge"
CHAOS = "churn@1:0.25:1.5,partition-tier:edge-fog@2:1.5"


def main() -> None:
    # --- 1. the tiered continuum -------------------------------------------
    env = Environment()
    net = Network(env, seed=42)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-server"))
    stored = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(stored.extend),
        workers=4, broker_shards=2,
    )
    spec = TopologySpec.parse(TOPOLOGY).scaled(N_DEVICES)
    devices = []

    def factory(tier, index):
        if tier != spec.leaf.name:
            return None  # fog hosts just forward
        device = Device(env, A8M3, name=f"{tier}-{index}")
        devices.append(device)
        return device

    topology = ContinuumTopology(net, spec, root_host="cloud",
                                 device_factory=factory)

    # --- 2. a durable fleet behind churn-transparent proxies ----------------
    journal_dir = tempfile.mkdtemp(prefix="provlight-continuum-")
    fleet = FleetFaultInjector(env, topology=topology, seed=42)
    proxies = []
    for device in devices:
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=journal_dir,
            client_id=device.name, qos=1,
            reconnect_base_s=0.2, reconnect_max_s=1.0,
        )

        def build(device=device, config=config):
            return create_client(device, server.endpoint,
                                 f"provlight/{device.name}/data", config)

        fleet.register(device.name, build(), build)
        proxies.append(fleet.proxy(device.name))

    # --- 3. the chaos schedule, parsed not hand-wired -----------------------
    profile = ChaosProfile.parse(CHAOS)
    profile.apply(fleet=fleet, topology=topology)

    # --- 4. the instrumented workloads --------------------------------------
    finished = []

    def workload(env, idx, proxy):
        yield from server.add_translator(f"provlight/{proxy.name}/data")
        yield from proxy.setup()
        wf_id = idx + 1
        workflow = Workflow(wf_id, proxy)
        yield from workflow.begin()
        for i in range(1, N_TASKS + 1):
            task = Task(i, workflow)
            yield from task.begin([Data(f"d{idx}-in{i}", wf_id, {"in": [1.0] * 4})])
            yield env.timeout(0.25)
            yield from task.end([Data(f"d{idx}-out{i}", wf_id, {"out": [2.0] * 4},
                                      derivations=[f"d{idx}-in{i}"])])
        yield from workflow.end(drain=True)
        finished.append(idx)

    for i, proxy in enumerate(proxies):
        env.process(workload(env, i, proxy))
    env.run(until=600)

    # --- 5. recovery asserted -----------------------------------------------
    stats = fleet.stats()
    completed = sum(p.records_completed for p in proxies)
    expected = N_DEVICES * RECORDS_PER_DEVICE
    print("=== continuum chaos: fleet churn + tier partition, zero loss ===")
    print(f"topology               : {topology.spec.describe()}")
    print(f"chaos                  : {CHAOS}")
    print(f"simulated time         : {env.now:.3f}s")
    print(f"devices crashed        : {stats['devices_crashed']} "
          f"(restarted {stats['devices_restarted']}, "
          f"journal recoveries {stats['journal_recoveries']})")
    print(f"max crash->up recovery : {stats['max_recovery_s']:.2f}s")
    print(f"tier outages           : {topology.tier_outages}")
    print(f"proxy ledger           : {completed} captures completed")
    print(f"records at backend     : {len(stored)}")

    assert len(finished) == N_DEVICES, "a workload never finished its drain"
    assert stats["devices_crashed"] == round(0.25 * N_DEVICES)
    assert stats["devices_restarted"] == stats["devices_crashed"]
    assert stats["devices_down"] == 0, "a device never came back"
    assert stats["journal_recoveries"] >= 1, "no journal had anything to replay"
    assert len(topology.tier_outages) == 1, "the partition never ran"
    assert completed == expected
    assert len(stored) == expected, "records lost or doubled under chaos!"
    print("\nrecovered: every record ingested exactly once across the continuum.")

    for name in fleet.devices:
        fleet.client_of(name).close()
    server.deduper.close()
    shutil.rmtree(journal_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
