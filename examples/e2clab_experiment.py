"""A configuration-driven Edge-to-Cloud experiment (paper Listing 2).

The whole deployment is described in three mini-YAML documents — layers &
services (with the ProvenanceManager enabled), network constraints, and
the workflow — and executed by the E2Clab-style experiment manager:
provisioning on simulated Grid'5000 + FIT IoT LAB testbeds, netem-style
link shaping, ProvLight capture on every edge device, DfAnalyzer storage
and queries on the cloud.

Run with:  python examples/e2clab_experiment.py
"""

from repro.e2clab import Experiment

LAYERS_SERVICES = """
environment:
  g5k: cluster: gros
  iotlab: cluster: grenoble
  provenance: ProvenanceManager
layers:
- name: cloud
  services:
  - name: Server, environment: g5k, qtd: 1
- name: edge
  services:
  - name: Client, environment: iotlab, arch: a8, qtd: 8
"""

NETWORK = """
networks:
- src: edge, dst: cloud, rate: "1Gbit", delay: "23ms"
"""

WORKFLOW = """
workflow:
- hosts: edge.Client
  workload: synthetic
  parameters:
    number_of_tasks: 20
    chained_transformations: 5
    attributes_per_task: 100
    task_duration_s: 0.5
"""


def main() -> None:
    experiment = Experiment(LAYERS_SERVICES, NETWORK, WORKFLOW)
    results = experiment.run()

    print("=== E2Clab experiment: 8 edge clients + provenance manager ===")
    runs = results.entries["edge.Client:synthetic"]
    print(f"devices that ran the workload : {len(runs)}")
    print(f"mean workflow elapsed         : "
          f"{sum(r['elapsed'] for r in runs) / len(runs):.2f}s")
    print(f"provenance records ingested   : {results.provenance_records}")

    print("\nper-device capture metrics:")
    for name in sorted(results.device_metrics):
        if not name.startswith("edge-"):
            continue
        m = results.device_metrics[name]
        power = f"{m.average_power_w:.3f}W" if m.average_power_w else "n/a"
        print(f"  {name}: cpu={m.capture_cpu_utilization * 100:.2f}% "
              f"mem={m.capture_memory_fraction * 100:.2f}% "
              f"tx={m.tx_bytes / 1024:.1f}KB power={power}")

    print("\nprovenance queries through the Provenance Manager:")
    summary = experiment.provenance.dataflow_summary("1")
    print(f"  dataflow 1: {summary['tasks']} tasks, by status {summary['by_status']}")
    finished = (
        experiment.provenance.query("tasks")
        .where("status", "==", "FINISHED")
        .count()
    )
    print(f"  finished tasks across all devices: {finished}")


if __name__ == "__main__":
    main()
