"""Chaos fan-in: a broker shard dies and the backend flaps, nothing is lost.

Four edge devices fan durable capture streams into a ProvLight server
whose broker plane runs four shards behind one endpoint and whose
backend is a remote HTTP provenance API.  Mid-stream the chaos harness
kills the busiest shard (the cluster watchdog fails it over: sessions
re-home, dropped publishers reconnect onto survivors and replay from
their journals) and flaps the server-to-backend uplink (the circuit
breaker opens, ingests spill into the bounded queue, and the drain
delivers the backlog once the link heals).  The run asserts full
recovery: every captured record reaches the backend exactly once.

Run with:  python examples/chaos_fanin.py
"""

import json
import shutil
import tempfile

from repro.capture import CaptureConfig, create_client
from repro.core import (
    CircuitBreaker,
    Data,
    HttpBackend,
    ProvLightServer,
    RetryPolicy,
    Task,
    Workflow,
)
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.http import HttpResponse, HttpServer
from repro.net import Network, ServerFaultInjector
from repro.simkernel import Environment

N_DEVICES = 4
N_TASKS = 10
RECORDS_PER_DEVICE = 2 + 2 * N_TASKS  # wf begin/end + task begin/end pairs


def main() -> None:
    # --- 1. edge fleet -> sharded server -> remote HTTP backend ------------
    env = Environment()
    net = Network(env, seed=42)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-server"))
    net.add_host("backend", device=Device(env, XEON_GOLD_5220, name="backend-api"))
    net.connect("cloud", "backend", bandwidth_bps=1e9, latency_s=0.002)

    # The HTTP edge is at-least-once under timeouts: a POST can time out
    # client-side *after* reaching the API, and the retry redelivers it.
    # A real provenance API therefore ingests idempotently — same pattern
    # the MQTT-SN plane implements with (client_id, seq) dedup — so this
    # one keys on record content and drops redeliveries.
    stored = []
    seen = set()
    redelivered = [0]

    def api_handler(request):
        payload = json.loads(request.body.decode())
        for record in payload if isinstance(payload, list) else [payload]:
            key = json.dumps(record, sort_keys=True, default=str)
            if key in seen:
                redelivered[0] += 1
                continue
            seen.add(key)
            stored.append(record)
        return HttpResponse(status=201, reason="Created")

    HttpServer(net.hosts["backend"], 5000, api_handler, workers=8)
    backend = HttpBackend(
        net.hosts["cloud"], ("backend", 5000), timeout_s=0.5,
        retry=RetryPolicy(max_attempts=3, base_s=0.05),
    )
    backend.breaker = CircuitBreaker(env, failure_threshold=3, reset_timeout_s=0.5)
    server = ProvLightServer(
        net.hosts["cloud"], backend, workers=4, broker_shards=4
    )

    # --- 2. durable capture clients ----------------------------------------
    journal_dir = tempfile.mkdtemp(prefix="provlight-chaos-")
    clients = []
    for i in range(N_DEVICES):
        dev = Device(env, A8M3, name=f"edge-{i}")
        net.add_host(f"edge-{i}", device=dev)
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.01)
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=journal_dir,
            client_id=f"edge-{i}", qos=1,
            reconnect_base_s=0.2, reconnect_max_s=1.0,
        )
        client = create_client(dev, server.endpoint, f"provlight/edge-{i}/data", config)
        client.transport.mqtt.retry_interval_s = 0.2
        client.transport.mqtt.max_retries = 3
        clients.append(client)

    # --- 3. the chaos schedule ---------------------------------------------
    chaos = ServerFaultInjector(server, network=net, backend_host="backend")
    chaos.kill_shard_at(1.0)                 # busiest shard dies mid fan-in
    chaos.flap_backend(period_s=2.0, down_s=1.2, cycles=2)

    # --- 4. the instrumented workloads -------------------------------------
    finished = []

    def workload(env, idx, client):
        yield from server.add_translator(f"provlight/edge-{idx}/data")
        yield from client.setup()
        # per-device workflow ids + dataset tags keep record *content*
        # unique across the fleet (the API's idempotency key needs it)
        wf_id = idx + 1
        workflow = Workflow(wf_id, client)
        yield from workflow.begin()
        for i in range(1, N_TASKS + 1):
            task = Task(i, workflow)
            yield from task.begin([Data(f"d{idx}-in{i}", wf_id, {"in": [1.0] * 8})])
            yield env.timeout(0.25)
            yield from task.end([Data(f"d{idx}-out{i}", wf_id, {"out": [2.0] * 8},
                                      derivations=[f"d{idx}-in{i}"])])
        yield from workflow.end(drain=True)
        finished.append(idx)

    for i, client in enumerate(clients):
        env.process(workload(env, i, client))
    env.run(until=600)

    # --- 5. recovery asserted ----------------------------------------------
    cluster = server.broker
    captured = sum(c.records_captured.count for c in clients)
    expected = N_DEVICES * RECORDS_PER_DEVICE
    print("=== chaos fan-in: shard kill + backend flap, full recovery ===")
    print(f"simulated time         : {env.now:.3f}s")
    print(f"chaos events           : {[(f'{t:.2f}s', w) for t, w in chaos.events]}")
    print(f"shard failovers        : {cluster.failovers.count} "
          f"(sessions migrated {cluster.sessions_migrated.count}, "
          f"dropped {cluster.sessions_dropped.count})")
    print(f"client reconnects      : {sum(c.reconnects.count for c in clients)}")
    print(f"journal replays        : {sum(c.replayed.count for c in clients)}")
    print(f"replay dups dropped    : {server.duplicates_dropped.count}")
    print(f"breaker opens / spills : {backend.breaker.opens.count} / "
          f"{backend.spilled.count} (drained {backend.spill_drained.count}, "
          f"shed {backend.shed.count})")
    print(f"records captured       : {captured}")
    print(f"records at backend     : {len(stored)} "
          f"(+{redelivered[0]} timed-out redeliveries dropped)")

    assert len(finished) == N_DEVICES, "a workload never finished its drain"
    assert cluster.failovers.count == 1, "the shard kill was not failed over"
    assert backend.breaker.opens.count >= 1, "the flap never tripped the breaker"
    assert backend.spilled.count >= 1, "no ingest spilled during the outage"
    assert backend.spill_drained.count == backend.spilled.count
    assert captured == expected
    assert backend.pending_spill == 0, "spill not fully drained"
    assert backend.shed.count == 0, "load shedding dropped records"
    assert len(stored) == expected, "records lost or doubled under chaos!"
    print("\nrecovered: every record ingested exactly once under chaos.")

    for client in clients:
        client.close()
    server.deduper.close()
    shutil.rmtree(journal_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
