"""Quickstart: capture workflow provenance with ProvLight.

This is the paper's Listing 1 in runnable form: an edge device runs a
small instrumented workflow; captured records travel over MQTT-SN/UDP to
the broker on a cloud host, where a translator feeds the DfAnalyzer-style
backend.  At the end we query the backend and rebuild the W3C PROV-DM
document.

Run with:  python examples/quickstart.py
"""

from repro.capture import CaptureConfig, create_client
from repro.core import (
    CallableBackend,
    Data,
    ProvLightServer,
    Task,
    Workflow,
    document_from_records,
)
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.dfanalyzer import DfAnalyzerService
from repro.net import Network
from repro.simkernel import Environment


def main() -> None:
    # --- 1. a tiny Edge-to-Cloud world ------------------------------------
    env = Environment()
    net = Network(env, seed=1)
    edge = Device(env, A8M3, name="edge-device")
    cloud = Device(env, XEON_GOLD_5220, name="cloud-server")
    net.add_host("edge", device=edge)
    net.add_host("cloud", device=cloud)
    net.connect("edge", "cloud", bandwidth_bps=1e9, latency_s=0.023)

    # --- 2. the ProvLight server: broker + translator + backend -----------
    # broker_shards=N partitions the broker plane behind the same single
    # endpoint (consistent hashing on client id) for multi-core fan-in;
    # the default of 1 is the paper's one-broker deployment
    backend = DfAnalyzerService()
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(backend.ingest))
    # the unified capture API: one declarative config selects transport x
    # grouping x QoS (swap transport="coap" or "http" and nothing else
    # changes — see docs/capture-api.md)
    client = create_client(edge, server.endpoint, "provlight/edge/data",
                           CaptureConfig(transport="mqttsn"))

    raw_records = []  # also keep the raw records for the PROV-DM rebuild

    # --- 3. the instrumented workflow (paper Listing 1) --------------------
    def workload(env):
        yield from server.add_translator("provlight/#")
        yield from client.setup()

        attributes = 10
        chained_transformations = 3
        number_of_tasks = 6

        workflow = Workflow(1, client)
        yield from workflow.begin()
        data_id = 0
        previous_task = []
        for transf_id in range(chained_transformations):
            for _ in range(number_of_tasks // chained_transformations):
                data_id += 1
                task = Task(f"{transf_id}-{data_id}", workflow, transf_id,
                            dependencies=previous_task)
                data_in = Data(f"in{data_id}", workflow.id,
                               {"in": [1] * attributes})
                yield from task.begin([data_in])
                # #### YOUR TASK RUNS HERE ####
                yield env.timeout(0.5)
                data_out = Data(f"out{data_id}", workflow.id,
                                {"out": [2] * attributes},
                                derivations=[f"in{data_id}"])
                yield from task.end([data_out])
                raw_records.append(task)
                previous_task = [task.id]
        yield from workflow.end(drain=True)

    env.process(workload(env))
    env.run()

    # --- 4. inspect what arrived ------------------------------------------------
    print("=== quickstart: ProvLight capture pipeline ===")
    print(f"simulated time          : {env.now:.3f}s")
    print(f"messages published      : {client.messages_sent.count}")
    print(f"payload bytes (total)   : {client.payload_bytes.total:.0f}")
    print(f"records in the backend  : {backend.records_ingested.count}")
    print(f"capture CPU utilization : {edge.cpu.utilization('capture') * 100:.2f}%")
    if edge.energy:
        print(f"average device power    : {edge.energy.average_power_w():.3f} W")

    print("\ntasks stored in DfAnalyzer:")
    for row in backend.query("tasks").order_by("time_begin").rows():
        print(
            f"  task {row['task_id']}: {row['status']:9s} "
            f"begin={row['time_begin']:.2f}s end={row['time_end']:.2f}s "
            f"deps=[{row['dependencies']}]"
        )

    # rebuild the PROV-DM document from the captured dataset rows
    datasets = backend.query("datasets").rows()
    print(f"\ndatasets captured: {len(datasets)} "
          f"(inputs: {sum(1 for d in datasets if d['direction'] == 'input')}, "
          f"outputs: {sum(1 for d in datasets if d['direction'] == 'output')})")
    lineage = backend.query("datasets").where("dataset_tag", "==", "out6").rows()
    print(f"out6 derived from: {lineage[0]['derivations']}")


if __name__ == "__main__":
    main()
