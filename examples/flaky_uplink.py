"""Durable capture over a flaky edge uplink.

An edge device runs an instrumented workflow while its uplink is cut
twice (a partition mid-stream plus a second flap).  The capture client
runs with ``durable=True``: every record is journaled to a write-ahead
store before dispatch, delivery failures trip the reconnect state
machine, and unacknowledged entries are replayed once the link heals.
Server-side ``(client_id, seq)`` dedup turns the replays into
exactly-once backend ingestion — the run asserts that the outages lost
**zero** records and ingested none twice.

Run with:  python examples/flaky_uplink.py
"""

import shutil
import tempfile

from repro.capture import CaptureConfig, HmacRecordSigner, create_client
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.net import LinkFaultInjector, Network
from repro.simkernel import Environment


def main() -> None:
    # --- 1. an edge-to-cloud world with a breakable uplink -----------------
    env = Environment()
    net = Network(env, seed=42)
    edge = Device(env, A8M3, name="edge-device")
    cloud = Device(env, XEON_GOLD_5220, name="cloud-server")
    net.add_host("edge", device=edge)
    net.add_host("cloud", device=cloud)
    net.connect("edge", "cloud", bandwidth_bps=1e6, latency_s=0.023)

    received = []
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(received.extend))

    # --- 2. a durable capture client ---------------------------------------
    # durable=True: journal write-through + replay-on-reconnect; the
    # signer makes the journal's hash chain tamper-evident end to end
    journal_dir = tempfile.mkdtemp(prefix="provlight-journal-")
    config = CaptureConfig(
        transport="mqttsn",
        durable=True,
        journal_dir=journal_dir,
        signer=HmacRecordSigner(b"demo-shared-key-0123"),
        reconnect_base_s=0.25,
        reconnect_max_s=2.0,
    )
    client = create_client(edge, server.endpoint, "provlight/edge/data", config)
    client.transport.mqtt.retry_interval_s = 0.25

    transitions = []
    client.add_connection_listener(
        lambda state: transitions.append((round(env.now, 3), state))
    )

    # --- 3. schedule the faults -------------------------------------------
    faults = LinkFaultInjector(net, "edge", "cloud")
    faults.partition_at(after_s=1.0, duration_s=3.0)   # mid-stream outage
    faults.partition_at(after_s=7.0, duration_s=1.5)   # and a second flap

    # --- 4. the instrumented workflow --------------------------------------
    def workload(env):
        yield from server.add_translator("provlight/#")
        yield from client.setup()
        workflow = Workflow(1, client)
        yield from workflow.begin()
        for i in range(1, 16):
            task = Task(i, workflow)
            yield from task.begin([Data(f"in{i}", 1, {"in": [1.0] * 10})])
            yield env.timeout(0.5)  # the task runs; outages come and go
            yield from task.end([Data(f"out{i}", 1, {"out": [2.0] * 10},
                                      derivations=[f"in{i}"])])
        # drain resolves only once every journaled record is delivered,
        # replays included
        yield from workflow.end(drain=True)

    env.process(workload(env))
    env.run(until=600)

    # --- 5. zero loss, exactly once ----------------------------------------
    captured = client.records_captured.count
    ingested = server.records_ingested.count
    print("=== flaky uplink: durable capture survives partitions ===")
    print(f"simulated time        : {env.now:.3f}s")
    print(f"outages               : {[(f'{a:.1f}s', f'{b:.1f}s') for a, b in faults.outages]}")
    print(f"records captured      : {captured}")
    print(f"records ingested      : {ingested}")
    print(f"reconnects / replays  : {client.reconnects.count} / {client.replayed.count}")
    print(f"replay dups dropped   : {server.duplicates_dropped.count}")
    print(f"journal pending       : {client.journal.pending}")
    print("connection transitions:")
    for at, state in transitions:
        print(f"  {at:7.3f}s  {state}")

    assert ingested == captured, "partition lost or doubled records!"
    assert client.journal.pending == 0, "journal not fully acknowledged"
    assert client.reconnects.count >= 1, "outage never exercised reconnect"
    print("\nzero records lost, every record ingested exactly once.")

    client.close()
    shutil.rmtree(journal_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
