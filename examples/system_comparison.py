"""Head-to-head: ProvLight vs ProvLake vs DfAnalyzer on one workload.

A quick, single-repetition version of the paper's Tables II/VII plus the
Fig. 6 resource metrics, on the 0.5 s / 100-attribute synthetic workload.
For the full grids with confidence intervals, use the harness:

    python -m repro.harness all

Run with:  python examples/system_comparison.py
"""

from repro.harness import ExperimentSetup, measure_overhead
from repro.metrics import render_table
from repro.workloads import SyntheticWorkloadConfig


def main() -> None:
    config = SyntheticWorkloadConfig(
        attributes_per_task=100, task_duration_s=0.5, number_of_tasks=50
    )
    rows = []
    for system in ("provlight", "dfanalyzer", "provlake"):
        result = measure_overhead(
            ExperimentSetup(system=system), config, repetitions=2
        )
        power = result.mean_metric(
            lambda m: m.average_power_w if m.average_power_w else 0.0
        )
        rows.append(
            [
                system,
                result.ci.as_percent(),
                f"{result.mean_metric(lambda m: m.capture_cpu_utilization) * 100:.2f}%",
                f"{result.mean_metric(lambda m: m.capture_memory_fraction) * 100:.2f}%",
                f"{result.mean_metric(lambda m: m.network_kb_per_s):.2f} KB/s",
                f"{power:.3f} W",
            ]
        )
    print(
        render_table(
            "capture systems on 50 x 0.5s tasks, 100 attributes (edge device)",
            ["system", "time overhead", "CPU", "memory", "network", "power"],
            rows,
            note=(
                "paper: ProvLight <3% overhead and 26-37x faster capture; "
                "5-7x less CPU, ~2x less memory, ~2x less data, 2-2.6x less energy"
            ),
        )
    )


if __name__ == "__main__":
    main()
