"""Federated Learning with provenance capture (the paper's use case).

Four simulated A8-M3 edge devices train a shared logistic-regression
model with FedAvg; every local epoch is captured with ProvLight.  After
training we answer the paper's two Section-I queries against the
DfAnalyzer backend:

  (i)  elapsed time and training loss in the latest epoch, per
       hyperparameter combination;
  (ii) hyperparameters of the 3 best accuracy values.

Run with:  python examples/federated_learning.py
"""

from repro.core import CallableBackend, ProvLightClient, ProvLightServer
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.dfanalyzer import DfAnalyzerService, latest_epoch_metrics, top_k_by_metric
from repro.net import Network
from repro.simkernel import Environment
from repro.workloads import FederatedConfig, federated_training


def main() -> None:
    config = FederatedConfig(
        n_clients=4, rounds=4, local_epochs=2,
        learning_rate=0.5, epoch_duration_s=0.3,
    )

    env = Environment()
    net = Network(env, seed=7)
    cloud = Device(env, XEON_GOLD_5220, name="fl-server")
    net.add_host("cloud", device=cloud)
    backend = DfAnalyzerService()
    server = ProvLightServer(net.hosts["cloud"], CallableBackend(backend.ingest))

    captures = []
    for i in range(config.n_clients):
        device = Device(env, A8M3, name=f"fl-client-{i}")
        net.add_host(f"edge-{i}", device=device)
        net.connect(f"edge-{i}", "cloud", bandwidth_bps=1e9, latency_s=0.023)
        captures.append(ProvLightClient(device, server.endpoint, f"provlight/fl/{i}"))

    history = {}

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from federated_training(env, captures, config, history)
        yield env.timeout(30)  # let async provenance drain

    env.process(scenario(env))
    env.run()

    print("=== federated learning with ProvLight provenance ===")
    print(f"clients={config.n_clients} rounds={config.rounds} "
          f"local_epochs={config.local_epochs} lr={config.learning_rate}")
    for entry in history["rounds"]:
        print(f"  round {entry['round']}: loss={entry['loss']:.4f} "
              f"accuracy={entry['accuracy']:.3f}")
    print(f"final global accuracy: {history['final_accuracy']:.3f}")
    print(f"provenance records stored: {backend.records_ingested.count}")

    print("\nquery (i): latest-epoch metrics per hyperparameter combination")
    for wf in sorted({r["dataflow_tag"] for r in backend.query("tasks").rows()}):
        rows = latest_epoch_metrics(backend, wf, ["lr", "local_epochs"],
                                    metrics=("elapsed_time", "loss"))
        for row in rows:
            print(f"  {wf}: lr={row['lr']} epochs={row['local_epochs']} "
                  f"last_epoch={row['epoch']} loss={row['loss']:.4f} "
                  f"elapsed={row['elapsed_time']:.2f}s")

    print("\nquery (ii): hyperparameters of the 3 best accuracies (client 0)")
    best = top_k_by_metric(backend, "fl-client-0", "accuracy",
                           ["lr", "round", "epoch"], k=3)
    for row in best:
        print(f"  accuracy={row['accuracy']:.3f} at lr={row['lr']} "
              f"round={row['round']} epoch={row['epoch']}")


if __name__ == "__main__":
    main()
