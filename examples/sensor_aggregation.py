"""Sensor aggregation over a constrained network: ProvLight vs ProvLake.

An edge device runs the 5-stage sensor pipeline (sample -> clean ->
aggregate -> detect -> report) on a 25 Kbit/s uplink — the paper's
low-bandwidth scenario.  We run it three times (no capture, ProvLight,
ProvLake) and compare workflow slowdowns, then walk the lineage of a
report back to the raw window through the captured provenance.

Run with:  python examples/sensor_aggregation.py
"""

from repro.baselines import NullCaptureClient, ProvLakeClient
from repro.core import CallableBackend, ProvLightClient, ProvLightServer
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.dfanalyzer import DfAnalyzerService, lineage_of
from repro.http import HttpResponse, HttpServer
from repro.net import Network
from repro.simkernel import Environment
from repro.workloads import SensorConfig, sensor_pipeline

BANDWIDTH = 25e3  # the paper's 25 Kbit/s constrained network
DELAY = 0.023


def build_world():
    env = Environment()
    net = Network(env, seed=11)
    edge = Device(env, A8M3, name="sensor-node")
    cloud = Device(env, XEON_GOLD_5220, name="cloud")
    net.add_host("edge", device=edge)
    net.add_host("cloud", device=cloud)
    net.connect("edge", "cloud", bandwidth_bps=BANDWIDTH, latency_s=DELAY)
    return env, net, edge


def run(system: str):
    env, net, edge = build_world()
    backend = DfAnalyzerService()
    if system == "provlight":
        server = ProvLightServer(net.hosts["cloud"], CallableBackend(backend.ingest))
        client = ProvLightClient(edge, server.endpoint, "provlight/sensors")
    elif system == "provlake":
        import json

        def handler(request):
            return HttpResponse(status=201, reason="Created")

        HttpServer(net.hosts["cloud"], 5000, handler)
        client = ProvLakeClient(edge, ("cloud", 5000))
        server = None
    else:
        client = NullCaptureClient(edge)
        server = None

    result = {}

    def scenario(env):
        if server is not None:
            yield from server.add_translator("provlight/#")
        yield from sensor_pipeline(env, client, SensorConfig(windows=8), result)
        result["workflow_elapsed"] = env.now

    env.process(scenario(env))
    env.run(until=600)
    return result, backend, edge


def main() -> None:
    print("=== sensor aggregation on a 25 Kbit/s uplink ===")
    baseline, _, _ = run("null")
    t0 = baseline["workflow_elapsed"]
    print(f"workflow without capture : {t0:.2f}s")

    light, backend, edge = run("provlight")
    t_light = light["workflow_elapsed"]
    print(f"with ProvLight           : {t_light:.2f}s "
          f"(overhead {100 * (t_light / t0 - 1):.2f}%)")

    lake, _, _ = run("provlake")
    t_lake = lake["workflow_elapsed"]
    print(f"with ProvLake            : {t_lake:.2f}s "
          f"(overhead {100 * (t_lake / t0 - 1):.2f}%)")

    print(f"\nanomalous windows detected: {light['anomalous_windows']}")

    print("\nlineage of window 3's report (walked from captured provenance):")
    chain = lineage_of(backend, "sensors", "rep-3")
    print("  rep-3 <- " + " <- ".join(chain))

    print("\ntakeaway: on constrained networks the blocking HTTP baseline "
          "stalls the pipeline, while ProvLight's asynchronous MQTT-SN "
          "publish leaves it nearly untouched (paper Tables III vs VIII).")


if __name__ == "__main__":
    main()
