"""Secure provenance transmission (the paper's future-work item).

The paper's conclusion: "in future work we will ... secure the data
transmission from the Edge devices to the provenance system."  This
example runs ProvLight with authenticated payload encryption between the
edge capture client and the cloud translator, then demonstrates that a
device publishing with the wrong key is rejected at the translator
without disturbing the pipeline.

Run with:  python examples/secure_capture.py
"""

import numpy as np

from repro.capture import CaptureConfig, create_client
from repro.core import (
    CallableBackend,
    Data,
    PayloadCipher,
    ProvLightServer,
    Task,
    Workflow,
    derive_key,
)
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.dfanalyzer import DfAnalyzerService
from repro.net import Network
from repro.simkernel import Environment


def main() -> None:
    shared_key = derive_key("edge-fleet-secret", salt="deployment-42")

    env = Environment()
    net = Network(env, seed=5)
    cloud = Device(env, XEON_GOLD_5220, name="cloud")
    net.add_host("cloud", device=cloud)
    backend = DfAnalyzerService()
    server = ProvLightServer(
        net.hosts["cloud"],
        CallableBackend(backend.ingest),
        cipher=PayloadCipher(shared_key, rng=np.random.default_rng(1)),
    )

    # the unified capture API threads the cipher through the config: the
    # same CaptureConfig would work over any registered transport
    trusted_dev = Device(env, A8M3, name="trusted-edge")
    net.add_host("trusted", device=trusted_dev)
    net.connect("trusted", "cloud", bandwidth_bps=1e9, latency_s=0.023)
    trusted = create_client(
        trusted_dev, server.endpoint, "provlight/trusted",
        CaptureConfig(cipher=PayloadCipher(shared_key,
                                           rng=np.random.default_rng(2))),
    )

    rogue_dev = Device(env, A8M3, name="rogue-edge")
    net.add_host("rogue", device=rogue_dev)
    net.connect("rogue", "cloud", bandwidth_bps=1e9, latency_s=0.023)
    rogue = create_client(
        rogue_dev, server.endpoint, "provlight/rogue",
        CaptureConfig(cipher=PayloadCipher(derive_key("guessed-wrong"),
                                           rng=np.random.default_rng(3))),
    )

    def run_device(env, client, label):
        yield from client.setup()
        wf = Workflow(label, client)
        yield from wf.begin()
        task = Task(f"{label}-t0", wf)
        yield from task.begin([Data(f"{label}-in", label, {"reading": 21.5})])
        yield env.timeout(0.5)
        yield from task.end([Data(f"{label}-out", label, {"ok": True})])
        yield from wf.end(drain=True)

    def scenario(env):
        yield from server.add_translator("provlight/#")
        yield from run_device(env, trusted, "trusted")
        yield from run_device(env, rogue, "rogue")
        yield env.timeout(10)

    env.process(scenario(env))
    env.run()

    print("=== secure provenance transmission ===")
    print(f"encryption overhead per message : "
          f"{PayloadCipher(shared_key).overhead_bytes} bytes (nonce + MAC)")
    print(f"records accepted from trusted   : "
          f"{backend.records_ingested.count}")
    print(f"payloads rejected (bad key)     : "
          f"{server.translate_errors.count}")
    tags = sorted({r['dataflow_tag'] for r in backend.query('tasks').rows()})
    print(f"dataflows stored                : {tags}")
    assert tags == ["trusted"], "rogue data must never reach the backend"
    print("\nthe rogue device's records were authenticated-rejected at the "
          "translator; the trusted pipeline was unaffected.")


if __name__ == "__main__":
    main()
