"""Elastic fan-in: a skewed burst autoscales the server, then it shrinks.

Six edge devices — their client ids deliberately chosen so classic
hash placement would pile every session onto one broker shard — fan
durable capture streams into a ProvLight server with the elastic plane
switched on: ``broker_placement="p2c"`` spreads the CONNECT burst by
live shard load, and the translator pool (``pool_min=2, pool_max=6``)
grows under the sustained ingest backlog, re-homing topic filters to
the new workers mid-stream, then shrinks back to its minimum once the
burst drains.  The run asserts the elasticity contract: the pool
actually scaled up *and* came back down, placement stayed balanced,
and every record was ingested exactly once, in per-task order, across
every worker handover.

The per-message translate cost is inflated (0.45 reference seconds;
the Xeon's io_speedup divides that to ~15 ms of service time) so a
handful of devices can saturate the minimum pool — real deployments
reach the same queue depths with thousands of devices instead.

Run with:  python examples/elastic_fanin.py
"""

import dataclasses
import shutil
import tempfile

from repro.calibration import SERVER_COSTS
from repro.capture import CaptureConfig, create_client
from repro.core import CallableBackend, Data, ProvLightServer, Task, Workflow
from repro.device import A8M3, XEON_GOLD_5220, Device
from repro.hashring import ConsistentHashRing
from repro.net import Network
from repro.simkernel import Environment

N_DEVICES = 6
N_TASKS = 30
RECORDS_PER_DEVICE = 2 + 2 * N_TASKS  # wf begin/end + task begin/end pairs


def clumped_ids(count: int, shards: int = 4) -> list:
    """Client ids that all hash onto shard 0 — the population that makes
    pure hash placement collapse onto one shard."""
    ring = ConsistentHashRing(shards, salt="shard")
    out, i = [], 0
    while len(out) < count:
        candidate = f"edge-{i}"
        if ring.node_for(candidate) == 0:
            out.append(candidate)
        i += 1
    return out


def main() -> None:
    # --- 1. skewed edge fleet -> elastic ProvLight server ------------------
    env = Environment()
    net = Network(env, seed=42)
    net.add_host("cloud", device=Device(env, XEON_GOLD_5220, name="cloud-server"))
    stored = []
    server = ProvLightServer(
        net.hosts["cloud"], CallableBackend(stored.extend),
        workers=2, broker_shards=4,
        broker_placement="p2c", pool_min=2, pool_max=6,
        costs=dataclasses.replace(SERVER_COSTS, translate_per_message_s=0.45),
    )
    cluster = server.broker

    journal_dir = tempfile.mkdtemp(prefix="provlight-elastic-")
    clients = []
    for cid in clumped_ids(N_DEVICES):
        dev = Device(env, A8M3, name=cid)
        net.add_host(cid, device=dev)
        # low-latency uplinks: the burst must outpace the pool's minimum
        net.connect(cid, "cloud", bandwidth_bps=1e9, latency_s=0.0005)
        config = CaptureConfig(
            transport="mqttsn", durable=True, journal_dir=journal_dir,
            client_id=cid, qos=1,
        )
        client = create_client(dev, server.endpoint, f"provlight/{cid}/data", config)
        clients.append(client)

    # --- 2. the instrumented burst -----------------------------------------
    finished = []
    pool_sizes = []

    def workload(env, idx, client):
        topic = f"provlight/{client.config.client_id}/data"
        yield from server.add_translator(topic)
        # stagger the CONNECTs a little so load-aware placement reads
        # the plane as it fills (a fleet never connects in one datagram)
        yield env.timeout(idx * 0.005)
        yield from client.setup()
        wf_id = idx + 1
        workflow = Workflow(wf_id, client)
        yield from workflow.begin()
        for i in range(1, N_TASKS + 1):
            task = Task(i, workflow)
            yield from task.begin([Data(f"d{idx}-in{i}", wf_id, {"x": [1.0] * 4})])
            yield env.timeout(0.01)
            yield from task.end([Data(f"d{idx}-out{i}", wf_id, {"y": [2.0] * 4})])
        yield from workflow.end(drain=True)
        finished.append(idx)

    def sampler(env):
        # watch the pool through the burst, then through the shrink
        while len(finished) < N_DEVICES or server.pool.queued:
            pool_sizes.append(len(server.pool))
            yield env.timeout(0.1)
        for _ in range(80):
            pool_sizes.append(len(server.pool))
            yield env.timeout(0.1)

    for i, client in enumerate(clients):
        env.process(workload(env, i, client))
    env.process(sampler(env))
    env.run(until=600)

    # --- 3. the elasticity contract asserted -------------------------------
    expected = N_DEVICES * RECORDS_PER_DEVICE
    captured = sum(c.records_captured.count for c in clients)
    stats = cluster.stats()
    pool = server.pool.stats()
    print("=== elastic fan-in: skewed burst, autoscale up then back down ===")
    print(f"simulated time          : {env.now:.3f}s")
    print(f"placement               : {stats['placement']} "
          f"(p2c placements {cluster.p2c_placements.count}, "
          f"session imbalance max/mean {stats['max_mean_session_ratio']:.2f})")
    print(f"pool trajectory         : min {pool['min_workers']} -> "
          f"peak {max(pool_sizes)} -> final {pool['size']} "
          f"(grows {pool['grows']}, shrinks {pool['shrinks']}, "
          f"filters re-homed {server.pool.migrated_filters.count})")
    print(f"records captured        : {captured}")
    print(f"records at backend      : {len(stored)}")

    assert len(finished) == N_DEVICES, "a workload never finished its drain"
    assert cluster.p2c_placements.count >= N_DEVICES
    assert stats["max_mean_session_ratio"] <= 1.75, "p2c left the plane skewed"
    assert server.pool.grows.count >= 1, "the burst never grew the pool"
    assert max(pool_sizes) > pool["min_workers"], "pool never ran above min"
    assert pool["size"] == pool["min_workers"], "pool did not shrink back"
    assert server.pool.shrinks.count >= 1
    assert server.pool.queued == 0
    assert captured == expected
    assert len(stored) == expected, "records lost or doubled mid-handover!"
    # per-task order survived every worker handover
    seen = {}
    for record in stored:
        if record["type"] != "task":
            continue
        key = (record["dataflow_tag"], record["task_id"])
        if record["status"] == "RUNNING":
            assert key not in seen, f"task {key} began twice"
            seen[key] = "RUNNING"
        else:
            assert seen.get(key) == "RUNNING", f"task {key} ended before it began"
            seen[key] = "FINISHED"
    print("\nelastic: scaled up under the burst, back to min when idle, "
          "exactly-once throughout.")

    for client in clients:
        client.close()
    server.deduper.close()
    shutil.rmtree(journal_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
